//! The stage taxonomy and the per-tick stage-time accumulator.
//!
//! Stage ids are dense `u16`s grouped by subsystem:
//!
//! * `0..TICK_STAGES` — the engine-tick breakdown ([`TICK`] plus the six
//!   phases of `step_sessions_scratch`: [`ASSEMBLE`], [`ENCODE`],
//!   [`QGEMM`], [`ATTENTION`], [`KV_APPEND`], [`FEEDBACK`]). These index
//!   directly into a [`StageTally`].
//! * `16..` — request-lifecycle transitions emitted as trace events
//!   (submitted → admitted → prefill → tokens → retired).
//! * `32..` — gateway connection phases.
//!
//! [`name`] maps any id back to its stable string (used by the Chrome
//! trace export and the bench JSON); unknown ids render as `"unknown"`
//! rather than panicking.

use std::time::Instant;

/// Time not attributed to any named stage (tick minus the stage sum).
pub const OTHER: u16 = 0;
/// One whole engine scheduler tick (batched step + bookkeeping).
pub const TICK: u16 = 1;
/// Stacking the active sessions' pending rows into one batch matrix.
pub const ASSEMBLE: u16 = 2;
/// Elementwise work: RMS-norm, activations, residual adds, online
/// activation quantization outside the GEMM kernels.
pub const ENCODE: u16 = 3;
/// Quantized GEMM/GEMV projections (q/k/v, attention out, MLP).
pub const QGEMM: u16 = 4;
/// Per-session attention over the KV cache (inline or sharded).
pub const ATTENTION: u16 = 5;
/// Appending this step's K/V rows to the packed caches.
pub const KV_APPEND: u16 = 6;
/// Closed-loop feedback: squashing output rows into next-step inputs and
/// publishing streamed tokens.
pub const FEEDBACK: u16 = 7;
/// Number of engine-tick stage slots (ids `0..TICK_STAGES` tally).
pub const TICK_STAGES: usize = 8;

/// Request accepted into the arrival queue (instant; value = prompt rows).
pub const REQ_SUBMITTED: u16 = 16;
/// Request shed by admission control (instant; value = queue depth).
pub const REQ_REJECTED: u16 = 17;
/// Request admitted into the running batch (span covering the queue wait).
pub const REQ_ADMITTED: u16 = 18;
/// Prefill completed for a request (instant; value = prompt rows).
pub const REQ_PREFILL: u16 = 19;
/// One decode token produced (instant; value = token index).
pub const REQ_TOKEN: u16 = 20;
/// Request retired with a `Finished` outcome (instant; value = tokens).
pub const REQ_FINISHED: u16 = 21;
/// Request retired with a `Cancelled` outcome (instant; value = tokens).
pub const REQ_CANCELLED: u16 = 22;
/// Request retired past its deadline (instant; value = tokens).
pub const REQ_DEADLINE: u16 = 23;
/// Request retired by panic isolation (instant; value = tokens).
pub const REQ_FAILED: u16 = 24;
/// KV pool pages entered use this tick — fresh allocations, free-list
/// reuses and copy-on-write forks combined (instant; value = page count).
pub const KV_PAGE_ALLOC: u16 = 25;
/// KV pool pages returned to the free list this tick (instant; value =
/// page count).
pub const KV_PAGE_RELEASE: u16 = 26;

/// One gateway TCP connection, accept to close (span; value = requests).
pub const GW_CONNECTION: u16 = 32;
/// Reading + incrementally parsing one HTTP request head/body (span).
pub const GW_PARSE: u16 = 33;
/// Streaming one SSE token response (span; value = tokens streamed).
pub const GW_STREAM: u16 = 34;

/// Stable display name of a stage id (trace export, bench JSON, docs).
pub fn name(stage: u16) -> &'static str {
    match stage {
        OTHER => "other",
        TICK => "tick",
        ASSEMBLE => "assemble",
        ENCODE => "encode",
        QGEMM => "qgemm",
        ATTENTION => "attention",
        KV_APPEND => "kv_append",
        FEEDBACK => "feedback",
        REQ_SUBMITTED => "req_submitted",
        REQ_REJECTED => "req_rejected",
        REQ_ADMITTED => "req_admitted",
        REQ_PREFILL => "req_prefill",
        REQ_TOKEN => "req_token",
        REQ_FINISHED => "req_finished",
        REQ_CANCELLED => "req_cancelled",
        REQ_DEADLINE => "req_deadline",
        REQ_FAILED => "req_failed",
        KV_PAGE_ALLOC => "kv_page_alloc",
        KV_PAGE_RELEASE => "kv_page_release",
        GW_CONNECTION => "gw_connection",
        GW_PARSE => "gw_parse",
        GW_STREAM => "gw_stream",
        _ => "unknown",
    }
}

/// Fixed-array accumulator of per-stage elapsed time across one engine
/// tick (or any other unit of work). Lives inline in the engine's step
/// scratch: recording is two array writes, no heap, no locks — cheap
/// enough for `// m2x-lint: hot` functions.
///
/// A disabled tally (the default — plain `m2x-nn` callers outside the
/// server never pay for timing) skips the clock reads entirely; the
/// engine enables it per tick when the server's telemetry is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTally {
    enabled: bool,
    ns: [u64; TICK_STAGES],
    calls: [u64; TICK_STAGES],
}

impl Default for StageTally {
    fn default() -> Self {
        StageTally::new()
    }
}

impl StageTally {
    /// A disabled, zeroed tally.
    pub fn new() -> StageTally {
        StageTally {
            enabled: false,
            ns: [0; TICK_STAGES],
            calls: [0; TICK_STAGES],
        }
    }

    /// Turns timing on or off (counts are untouched).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether stage clocks are being read.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Zeroes the accumulated times and call counts, keeping the enable
    /// flag — the engine calls this at the top of every tick.
    pub fn clear(&mut self) {
        self.ns = [0; TICK_STAGES];
        self.calls = [0; TICK_STAGES];
    }

    /// Adds `ns` nanoseconds to `stage` (ignored when disabled or the id
    /// is outside the tick-stage range).
    #[inline]
    pub fn add_ns(&mut self, stage: u16, ns: u64) {
        if self.enabled && (stage as usize) < TICK_STAGES {
            self.ns[stage as usize] = self.ns[stage as usize].saturating_add(ns);
            self.calls[stage as usize] += 1;
        }
    }

    /// Times `f` against `stage`. When the tally is disabled this is just
    /// the call — no clock reads.
    #[inline]
    pub fn time<R>(&mut self, stage: u16, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let t0 = Instant::now();
        let out = f();
        self.add_ns(stage, t0.elapsed().as_nanos() as u64);
        out
    }

    /// Accumulated nanoseconds for `stage` (0 for out-of-range ids).
    pub fn ns(&self, stage: u16) -> u64 {
        if (stage as usize) < TICK_STAGES {
            self.ns[stage as usize]
        } else {
            0
        }
    }

    /// Times recorded against `stage` (0 for out-of-range ids).
    pub fn calls(&self, stage: u16) -> u64 {
        if (stage as usize) < TICK_STAGES {
            self.calls[stage as usize]
        } else {
            0
        }
    }

    /// Sum over the named sub-tick stages ([`ASSEMBLE`]..[`FEEDBACK`] —
    /// [`TICK`] and [`OTHER`] excluded, so this is comparable to a
    /// measured whole-tick time).
    pub fn stage_sum_ns(&self) -> u64 {
        self.ns[ASSEMBLE as usize..TICK_STAGES]
            .iter()
            .fold(0u64, |acc, v| acc.saturating_add(*v))
    }

    /// Folds another tally's times and counts into this one (the engine
    /// merges each tick's tally into a lifetime accumulator).
    pub fn merge(&mut self, other: &StageTally) {
        for i in 0..TICK_STAGES {
            self.ns[i] = self.ns[i].saturating_add(other.ns[i]);
            self.calls[i] += other.calls[i];
        }
    }
}

/// RAII stage timer: starts a clock on construction, adds the elapsed
/// time to its [`StageTally`] slot on drop. For straight-line regions the
/// closure form [`StageTally::time`] reads better; the guard exists for
/// scopes with early exits (`?`, `return`, `break`) where a closure
/// cannot wrap the region.
#[derive(Debug)]
pub struct StageTimer<'a> {
    tally: &'a mut StageTally,
    stage: u16,
    start: Option<Instant>,
}

impl<'a> StageTimer<'a> {
    /// Starts timing `stage` (a no-op guard when the tally is disabled).
    #[inline]
    pub fn start(tally: &'a mut StageTally, stage: u16) -> StageTimer<'a> {
        let start = tally.enabled.then(Instant::now);
        StageTimer {
            tally,
            stage,
            start,
        }
    }
}

impl Drop for StageTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.tally
                .add_ns(self.stage, t0.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tally_records_nothing() {
        let mut t = StageTally::new();
        t.add_ns(QGEMM, 100);
        let v = t.time(ENCODE, || 42);
        assert_eq!(v, 42);
        assert_eq!(t.ns(QGEMM), 0);
        assert_eq!(t.calls(ENCODE), 0);
        assert_eq!(t.stage_sum_ns(), 0);
    }

    #[test]
    fn enabled_tally_accumulates_and_merges() {
        let mut t = StageTally::new();
        t.set_enabled(true);
        t.add_ns(QGEMM, 100);
        t.add_ns(QGEMM, 50);
        t.add_ns(ATTENTION, 7);
        t.add_ns(TICK, 1_000); // excluded from the stage sum
        assert_eq!(t.ns(QGEMM), 150);
        assert_eq!(t.calls(QGEMM), 2);
        assert_eq!(t.stage_sum_ns(), 157);

        let mut total = StageTally::new();
        total.merge(&t);
        total.merge(&t);
        assert_eq!(total.ns(QGEMM), 300);
        assert_eq!(total.calls(ATTENTION), 2);
        // Merging never needs `total` itself to be enabled.
        assert!(!total.enabled());
    }

    #[test]
    fn clear_keeps_enable_flag() {
        let mut t = StageTally::new();
        t.set_enabled(true);
        t.add_ns(FEEDBACK, 9);
        t.clear();
        assert!(t.enabled());
        assert_eq!(t.ns(FEEDBACK), 0);
        assert_eq!(t.calls(FEEDBACK), 0);
    }

    #[test]
    fn timer_and_closure_record_real_time() {
        let mut t = StageTally::new();
        t.set_enabled(true);
        {
            let _guard = StageTimer::start(&mut t, ASSEMBLE);
            std::hint::black_box(());
        }
        t.time(ENCODE, || std::hint::black_box(()));
        assert_eq!(t.calls(ASSEMBLE), 1);
        assert_eq!(t.calls(ENCODE), 1);
    }

    #[test]
    fn out_of_range_stage_ids_are_ignored() {
        let mut t = StageTally::new();
        t.set_enabled(true);
        t.add_ns(REQ_TOKEN, 100);
        t.add_ns(u16::MAX, 100);
        assert_eq!(t.stage_sum_ns(), 0);
        assert_eq!(t.ns(REQ_TOKEN), 0);
        assert_eq!(t.calls(u16::MAX), 0);
    }

    #[test]
    fn every_named_stage_has_a_stable_name() {
        for (id, want) in [
            (OTHER, "other"),
            (TICK, "tick"),
            (ASSEMBLE, "assemble"),
            (ENCODE, "encode"),
            (QGEMM, "qgemm"),
            (ATTENTION, "attention"),
            (KV_APPEND, "kv_append"),
            (FEEDBACK, "feedback"),
            (REQ_SUBMITTED, "req_submitted"),
            (REQ_REJECTED, "req_rejected"),
            (REQ_ADMITTED, "req_admitted"),
            (REQ_PREFILL, "req_prefill"),
            (REQ_TOKEN, "req_token"),
            (REQ_FINISHED, "req_finished"),
            (REQ_CANCELLED, "req_cancelled"),
            (REQ_DEADLINE, "req_deadline"),
            (REQ_FAILED, "req_failed"),
            (KV_PAGE_ALLOC, "kv_page_alloc"),
            (KV_PAGE_RELEASE, "kv_page_release"),
            (GW_CONNECTION, "gw_connection"),
            (GW_PARSE, "gw_parse"),
            (GW_STREAM, "gw_stream"),
        ] {
            assert_eq!(name(id), want);
        }
        assert_eq!(name(15), "unknown");
        assert_eq!(name(u16::MAX), "unknown");
    }
}
