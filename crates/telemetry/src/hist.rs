//! Log-bucketed fixed-array histogram.
//!
//! An HDR-style layout over the full `u64` domain with 4 significant
//! bits: values below 16 get exact unit buckets, and every power-of-two
//! octave above is split into 16 geometric sub-buckets, so relative
//! quantile error is bounded by 1/16 (6.25%) everywhere. The bucket
//! array is a single fixed `Box<[u64; 976]>` — one allocation at
//! construction, zero on [`Histogram::record`], no growth ever — which is
//! what lets the scheduler keep one of these per latency metric inside
//! its queue state and record from the hot tick path.
//!
//! Counts are **exact at power-of-two boundaries** ([`count_below`]
//! returns a precise answer whenever `bound` is `< 16` or a power of
//! two), which the `/metrics` exporter exploits: its cumulative `le`
//! ladder is built from powers of 4, so every Prometheus bucket line is
//! an exact count rather than an interpolation.
//!
//! [`count_below`]: Histogram::count_below

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave (and the width of the exact low range).
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`: the exact `0..16` range
/// plus 60 octaves (`2^4..2^64`) of 16 sub-buckets each.
pub const BUCKETS: usize = SUB * 61;

/// Bucket index for a recorded value.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        // `v >= 16` so `leading_zeros <= 59` and `exp >= 4`.
        let exp = 63 - v.leading_zeros();
        let octave = (exp + 1 - SUB_BITS) as usize;
        let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB - 1);
        octave * SUB + sub
    }
}

/// Lowest value that lands in bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let (octave, sub) = (i / SUB, (i % SUB) as u64);
        (SUB as u64 + sub) << (octave - 1)
    }
}

/// Number of distinct values bucket `i` covers.
fn bucket_width(i: usize) -> u64 {
    if i < SUB {
        1
    } else {
        1u64 << (i / SUB - 1)
    }
}

/// A mergeable log-bucketed histogram of `u64` samples (latencies in
/// microseconds, token counts, queue depths — anything non-negative).
///
/// ```
/// use m2x_telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [3, 3, 40, 1_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.sum(), 1_046);
/// assert_eq!(h.count_below(16), 2); // exact: 16 is a bucket boundary
/// assert_eq!(h.quantile(0.5), 3);
/// assert!(h.quantile(1.0) >= 1_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (the one heap allocation this type makes).
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. Never allocates; the running sum saturates at
    /// `u64::MAX` instead of wrapping.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[index_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, **exact** (not bucketed; 0 when empty).
    /// On a latency histogram this is the noise floor — preemption and
    /// cache pollution only ever add time, so the minimum estimates the
    /// clean cost of the measured operation.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, exact (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Adds every sample of `other` into this histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Zeroes the histogram in place (no reallocation).
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 <= q <= 1.0`; returns 0 on an empty histogram). The answer
    /// overestimates the true order statistic by at most the bucket
    /// width, i.e. a relative error of 1/16.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_low(i) + (bucket_width(i) - 1);
            }
        }
        bucket_low(BUCKETS - 1) + (bucket_width(BUCKETS - 1) - 1)
    }

    /// Number of samples in buckets that lie entirely below `bound` —
    /// exact (equal to the number of samples `< bound`) whenever `bound`
    /// is `<= 16` or a power of two, because those are bucket boundaries.
    /// For a mid-bucket `bound` the straddling bucket is excluded, so the
    /// result is a lower bound.
    pub fn count_below(&self, bound: u64) -> u64 {
        let mut total = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if bucket_low(i) >= bound {
                break;
            }
            if bucket_low(i) + (bucket_width(i) - 1) < bound {
                total += n;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_and_monotone() {
        // Every value maps into a bucket whose [low, low+width) range
        // contains it, and bucket lows tile the domain with no gaps.
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_low(i) + bucket_width(i),
                bucket_low(i + 1),
                "gap after bucket {i}"
            );
        }
        for v in (0..4096u64).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]) {
            let i = index_of(v);
            assert!(bucket_low(i) <= v, "{v} below bucket {i}");
            assert!(v - bucket_low(i) < bucket_width(i), "{v} past bucket {i}");
        }
        assert_eq!(index_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn values_below_sixteen_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
            h.record(v);
        }
        for v in 0..16u64 {
            assert_eq!(h.count_below(v + 1) - h.count_below(v), 2);
        }
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            assert!(got >= want, "q{q}: {got} < {want}");
            assert!(
                got <= want * (1.0 + 1.0 / 16.0) + 1.0,
                "q{q}: {got} ≫ {want}"
            );
        }
        assert_eq!(h.quantile(0.0), 1);
        assert!(h.quantile(1.0) >= 10_000);
    }

    #[test]
    fn count_below_is_exact_at_power_of_two_boundaries() {
        let mut h = Histogram::new();
        for v in 0..100_000u64 {
            h.record(v * 7 + 3);
        }
        for bound in [1u64, 4, 16, 64, 256, 1024, 4096, 65_536, 1 << 20] {
            let want = (0..100_000u64).filter(|v| v * 7 + 3 < bound).count() as u64;
            assert_eq!(h.count_below(bound), want, "bound {bound}");
        }
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..1_000u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn clear_and_empty_behave() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(123);
        assert!(!h.is_empty());
        assert_eq!(h.mean(), 123.0);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.count_below(u64::MAX), 0);
    }

    #[test]
    fn min_and_max_are_exact() {
        let mut h = Histogram::new();
        assert_eq!((h.min(), h.max()), (0, 0));
        for v in [777u64, 3, 1_000_000, 3, 41] {
            h.record(v);
        }
        // Exact values, not bucket bounds (777 and 41 are mid-bucket).
        assert_eq!((h.min(), h.max()), (3, 1_000_000));
        let mut other = Histogram::new();
        other.record(1);
        h.merge(&other);
        assert_eq!((h.min(), h.max()), (1, 1_000_000));
        h.merge(&Histogram::new()); // empty merge leaves both intact
        assert_eq!((h.min(), h.max()), (1, 1_000_000));
        h.clear();
        assert_eq!((h.min(), h.max()), (0, 0));
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
