//! Fixed-capacity trace rings and the [`Telemetry`] registry.
//!
//! Every recording site holds a [`TraceHandle`] — a named slot inside a
//! shared [`Telemetry`] instance. Pushing an event locks the slot's own
//! uncontended mutex and writes one 32-byte [`TraceEvent`] into a
//! preallocated ring: zero heap allocations when warm, and when the ring
//! is full the **oldest** event is overwritten (a trace is a window onto
//! recent history, and the hot path must never block on an observer).
//! Every overwrite is counted so a drained trace says how much it lost.
//!
//! Timestamps are microseconds since the registry's creation
//! [`Instant`], read with saturating arithmetic so a ring filled from a
//! thread whose clock races the base can never panic or go negative.
//! All handles share one base, which is what makes events from the API
//! threads, the engine thread and the gateway workers mutually ordered
//! in the drained trace.

use crate::locked;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Whether an event is a duration or a point in time — maps onto the
/// Chrome trace-event phases `"X"` (complete span) and `"i"` (instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A region with a start and a duration.
    Span,
    /// A single point in time.
    Instant,
}

/// One compact trace record (32 bytes, `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the owning [`Telemetry`]'s base instant.
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instants).
    pub dur_us: u32,
    /// Stage id (see [`crate::stage`]).
    pub stage: u16,
    /// Span or instant.
    pub kind: TraceKind,
    /// Request id the event belongs to (0 = not request-scoped).
    pub req: u32,
    /// Stage-specific payload (token index, batch size, queue depth …).
    pub value: u64,
}

/// Fixed-capacity ring of [`TraceEvent`]s. Normally used through
/// [`TraceHandle`]; public for tests and embedded use.
#[derive(Debug)]
pub struct TraceRing {
    buf: Box<[TraceEvent]>,
    /// Next write position.
    head: usize,
    /// Live events (≤ capacity).
    len: usize,
    /// Events overwritten before they were drained.
    dropped: u64,
}

const ZERO_EVENT: TraceEvent = TraceEvent {
    ts_us: 0,
    dur_us: 0,
    stage: 0,
    kind: TraceKind::Instant,
    req: 0,
    value: 0,
};

impl TraceRing {
    /// A ring holding up to `capacity` events (one allocation, here).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            buf: vec![ZERO_EVENT; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest (and counting the loss)
    /// when full. Allocation-free.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        let cap = self.buf.len();
        if cap == 0 {
            self.dropped += 1;
            return;
        }
        self.buf[self.head] = ev;
        self.head = (self.head + 1) % cap;
        if self.len < cap {
            self.len += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Live events, oldest first.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events lost to overwrites since the last [`TraceRing::drain`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns every buffered event, oldest first, and
    /// resets the dropped counter. Allocates (cold path: `/v1/trace`).
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let cap = self.buf.len();
        let start = (self.head + cap - self.len) % cap.max(1);
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.buf[(start + i) % cap]);
        }
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
        out
    }
}

struct RingSlot {
    name: String,
    ring: Mutex<TraceRing>,
}

/// The contents of one named ring, as returned by [`Telemetry::drain`].
#[derive(Debug, Clone)]
pub struct DrainedRing {
    /// The name the ring was registered under (e.g. `"engine"`).
    pub name: String,
    /// Registration index — stable per ring, used as the Chrome trace
    /// `tid` so each ring renders as its own track.
    pub tid: u32,
    /// Buffered events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to overwrites since the previous drain.
    pub dropped: u64,
}

/// Shared tracing registry: one monotonic time base, a global on/off
/// switch, and any number of named fixed-capacity rings. Created once
/// per server and shared via `Arc`; see the crate docs for an example.
pub struct Telemetry {
    enabled: AtomicBool,
    base: Instant,
    rings: Mutex<Vec<Arc<RingSlot>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("rings", &locked(&self.rings).len())
            .finish()
    }
}

impl Telemetry {
    /// A fresh registry; `enabled` gates every record site at once.
    pub fn new(enabled: bool) -> Telemetry {
        Telemetry {
            enabled: AtomicBool::new(enabled),
            base: Instant::now(),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Whether record sites should emit events.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips the global switch (existing buffered events are kept).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Microseconds since this registry was created (saturating: never
    /// panics, even against a clock observed before `base`).
    #[inline]
    pub fn now_us(&self) -> u64 {
        let us = Instant::now()
            .saturating_duration_since(self.base)
            .as_micros();
        us.min(u64::MAX as u128) as u64
    }

    /// Registers a new named ring of `capacity` events and returns the
    /// handle record sites push through. Cold path — called once per
    /// recording thread/subsystem at startup.
    pub fn register(self: &Arc<Self>, name: &str, capacity: usize) -> TraceHandle {
        let slot = Arc::new(RingSlot {
            name: name.to_string(),
            ring: Mutex::new(TraceRing::new(capacity)),
        });
        locked(&self.rings).push(Arc::clone(&slot));
        TraceHandle {
            telemetry: Arc::clone(self),
            slot,
        }
    }

    /// Drains every registered ring (oldest events first within each),
    /// in registration order. Destructive: a second immediate drain
    /// returns empty rings.
    pub fn drain(&self) -> Vec<DrainedRing> {
        let rings = locked(&self.rings);
        rings
            .iter()
            .enumerate()
            .map(|(tid, slot)| {
                let mut ring = locked(&slot.ring);
                let dropped = ring.dropped();
                DrainedRing {
                    name: slot.name.clone(),
                    tid: tid as u32,
                    events: ring.drain(),
                    dropped,
                }
            })
            .collect()
    }

    /// Total events currently buffered across all rings.
    pub fn buffered(&self) -> usize {
        locked(&self.rings)
            .iter()
            .map(|s| locked(&s.ring).len())
            .sum()
    }
}

/// A record site's handle onto one ring of a shared [`Telemetry`].
/// Cloning is cheap (two `Arc` bumps) and clones share the same ring.
#[derive(Clone)]
pub struct TraceHandle {
    telemetry: Arc<Telemetry>,
    slot: Arc<RingSlot>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("name", &self.slot.name)
            .finish()
    }
}

impl TraceHandle {
    /// Whether the owning registry is currently recording. Record sites
    /// with non-trivial argument setup should check this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.telemetry.enabled()
    }

    /// Microseconds on the shared clock (see [`Telemetry::now_us`]).
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.telemetry.now_us()
    }

    /// Records a completed span from `start_us` to `end_us` (saturating
    /// if they are out of order). No-op when disabled; allocation-free.
    #[inline]
    pub fn span(&self, stage: u16, req: u32, start_us: u64, end_us: u64, value: u64) {
        if !self.enabled() {
            return;
        }
        let dur = end_us.saturating_sub(start_us).min(u32::MAX as u64) as u32;
        locked(&self.slot.ring).push(TraceEvent {
            ts_us: start_us,
            dur_us: dur,
            stage,
            kind: TraceKind::Span,
            req,
            value,
        });
    }

    /// Records an instant event stamped now. No-op when disabled;
    /// allocation-free.
    #[inline]
    pub fn instant(&self, stage: u16, req: u32, value: u64) {
        if !self.enabled() {
            return;
        }
        let ts_us = self.now_us();
        locked(&self.slot.ring).push(TraceEvent {
            ts_us,
            dur_us: 0,
            stage,
            kind: TraceKind::Instant,
            req,
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage;

    #[test]
    fn ring_preserves_order_and_overwrites_oldest() {
        let mut ring = TraceRing::new(4);
        for i in 0..6u64 {
            ring.push(TraceEvent {
                ts_us: i,
                ..ZERO_EVENT
            });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let got: Vec<u64> = ring.drain().iter().map(|e| e.ts_us).collect();
        assert_eq!(got, vec![2, 3, 4, 5]);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn zero_capacity_ring_only_counts() {
        let mut ring = TraceRing::new(0);
        ring.push(ZERO_EVENT);
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.dropped(), 1);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn registry_orders_events_across_handles() {
        let tl = Arc::new(Telemetry::new(true));
        let a = tl.register("alpha", 16);
        let b = tl.register("beta", 16);
        let t0 = a.now_us();
        a.instant(stage::REQ_SUBMITTED, 1, 3);
        b.span(stage::GW_PARSE, 1, t0, b.now_us(), 0);
        assert_eq!(tl.buffered(), 2);
        let drained = tl.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].name, "alpha");
        assert_eq!(drained[0].tid, 0);
        assert_eq!(drained[1].name, "beta");
        assert_eq!(drained[1].tid, 1);
        assert_eq!(drained[0].events[0].kind, TraceKind::Instant);
        assert_eq!(drained[1].events[0].kind, TraceKind::Span);
        // Drains are destructive.
        assert!(tl.drain().iter().all(|r| r.events.is_empty()));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let tl = Arc::new(Telemetry::new(false));
        let h = tl.register("quiet", 16);
        h.instant(stage::REQ_TOKEN, 7, 0);
        h.span(stage::TICK, 0, 0, 10, 0);
        assert_eq!(tl.buffered(), 0);
        tl.set_enabled(true);
        h.instant(stage::REQ_TOKEN, 7, 0);
        assert_eq!(tl.buffered(), 1);
    }

    #[test]
    fn spans_saturate_on_inverted_ranges() {
        let tl = Arc::new(Telemetry::new(true));
        let h = tl.register("x", 4);
        h.span(stage::TICK, 0, 100, 40, 0); // end before start
        let ev = tl.drain().remove(0).events[0];
        assert_eq!(ev.dur_us, 0);
        assert_eq!(ev.ts_us, 100);
    }

    #[test]
    fn timestamps_are_monotone_per_handle() {
        let tl = Arc::new(Telemetry::new(true));
        let h = tl.register("mono", 64);
        for i in 0..32 {
            h.instant(stage::REQ_TOKEN, 1, i);
        }
        let events = tl.drain().remove(0).events;
        for w in events.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
    }
}
