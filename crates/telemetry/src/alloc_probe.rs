//! A counting [`GlobalAlloc`] — the runtime witness behind the
//! crate's allocation-free-when-warm claims and the `m2x-lint` R1
//! hot-path allocation rule.
//!
//! A test or bench binary installs [`CountingAlloc`] as its
//! `#[global_allocator]` and then asserts, via [`count_allocations`],
//! that a warmed-up hot path performs zero (or a bounded number of) heap
//! allocations per step. The static lint proves the *source* discipline;
//! this proves the *runtime* behaviour the discipline exists for —
//! `tests/alloc_gate.rs` and the `telemetry.zero_alloc` CI bench gate
//! are both built on it.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocations observed process-wide since program start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation (fresh
/// `alloc`s and growing `realloc`s; frees are not counted).
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the added atomic counter bumps never touch the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: unsafe-to-call per the trait; delegates to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds `layout`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: unsafe-to-call per the trait; delegates to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator (which is `System`
        // underneath) with the same `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: unsafe-to-call per the trait; delegates to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the `realloc`
        // contract for `ptr`/`layout`/`new_size`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Runs `f` and returns how many heap allocations it performed.
///
/// Counts process-wide: run witness tests single-threaded
/// (`--test-threads=1`) so concurrent tests don't bleed in. In a binary
/// that did **not** install [`CountingAlloc`] the counter never moves and
/// this reports 0 — callers gating on the result should make sure the
/// probe is actually installed (the bench binary and `alloc_gate` do).
pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}
