//! # m2x-telemetry
//!
//! Fixed-capacity, allocation-free-when-warm instrumentation for the
//! serving stack: the measurement layer behind `/metrics` histograms,
//! `GET /v1/trace` Chrome traces, and the `telemetry` section of the CI
//! bench JSON.
//!
//! The MX benchmarking line of work argues that format and serving
//! choices must be *recorded measurements* rather than guesses; this
//! crate makes the recording cheap enough to leave on in production and
//! inside `// m2x-lint: hot` functions:
//!
//! * [`trace::TraceRing`] — a fixed-capacity ring of compact
//!   [`trace::TraceEvent`] records (monotonic microsecond timestamps from
//!   a saturating [`std::time::Instant`] base, `u16` stage ids, `u32`
//!   request ids). Pushing into a warm ring performs **zero** heap
//!   allocations; when full it overwrites the oldest event and counts the
//!   loss, so the hot path never blocks on an observer.
//! * [`hist::Histogram`] — a log-bucketed fixed-array histogram (no `Vec`
//!   growth, mergeable) with exact counts at power-of-two bucket
//!   boundaries, backing the Prometheus `_bucket`/`_sum`/`_count` lines
//!   and the scheduler's p50/p90/p99 step latency.
//! * [`stage::StageTally`] / [`stage::StageTimer`] — a per-scratch
//!   fixed-array accumulator and RAII guard splitting an engine tick into
//!   the stage taxonomy of [`stage`] (assemble, encode, qgemm, attention,
//!   kv_append, feedback).
//! * [`trace::Telemetry`] — the registry tying it together: one shared
//!   time base, a kill switch, and named per-thread rings drained by the
//!   gateway's `GET /v1/trace`.
//! * [`alloc_probe`] — the counting [`std::alloc::GlobalAlloc`] witness
//!   used by `tests/alloc_gate.rs` and the bench binary to *prove* the
//!   zero-allocation claim at runtime (`telemetry.zero_alloc` CI gate).
//!
//! Everything is std-only and engine-crate lint discipline applies
//! (`m2x-lint` R1–R3): no panicking constructs, no allocation in the
//! record paths.
//!
//! ```
//! use m2x_telemetry::{stage, Telemetry};
//! use std::sync::Arc;
//!
//! let telemetry = Arc::new(Telemetry::new(true));
//! let ring = telemetry.register("engine", 1024);
//! let t0 = ring.now_us();
//! // ... do a tick ...
//! ring.span(stage::TICK, 0, t0, ring.now_us(), 4);
//! let drained = telemetry.drain();
//! assert_eq!(drained[0].events.len(), 1);
//! assert_eq!(drained[0].events[0].stage, stage::TICK);
//! ```

#![warn(missing_docs)]
// `unsafe` is confined to `alloc_probe` (a `GlobalAlloc` impl cannot be
// written without it); everything else in the crate is safe code.
#![deny(unsafe_code)]

pub mod alloc_probe;
pub mod hist;
pub mod stage;
pub mod trace;

pub use hist::Histogram;
pub use stage::{StageTally, StageTimer};
pub use trace::{DrainedRing, Telemetry, TraceEvent, TraceHandle, TraceKind};

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, tolerating poison: telemetry is an observer, so a panic in
/// some other thread holding a ring must never cascade into the engine's
/// record path (the data is plain counters — safe to read after unwind).
pub(crate) fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
