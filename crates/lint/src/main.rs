//! `m2x-lint` CLI: scan the workspace, print findings, exit non-zero on
//! any violation. Usage:
//!
//! ```text
//! cargo run -p m2x-lint            # scan the enclosing workspace
//! cargo run -p m2x-lint -- <root>  # scan an explicit workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match m2x_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("m2x-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let report = m2x_lint::scan_workspace(&root);
    for finding in &report.findings {
        println!("{finding}");
    }
    if report.is_clean() {
        println!(
            "m2x-lint: clean ({} files scanned, rules R1-R4)",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "m2x-lint: {} finding(s) across {} files scanned",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
