//! The four rule families, layered on top of [`crate::scan`]'s stripped
//! lines.
//!
//! * **R1 hot-path allocation discipline** — a function tagged
//!   `// m2x-lint: hot` may not contain allocating constructs anywhere in
//!   its body unless the offending line carries (or is directly preceded
//!   by) `// m2x-lint: allow(alloc) <reason>`.
//! * **R2 panic discipline** — engine/gateway code outside test regions
//!   may not `unwrap()`/`expect(`/`panic!`/`todo!`/`unimplemented!`, and
//!   `.lock()` must go through a poison-tolerant helper rather than
//!   `.lock().unwrap()`. Escape hatch: `// m2x-lint: allow(panic) <reason>`.
//! * **R3 unsafe audit** — every `unsafe` keyword needs a `// SAFETY:`
//!   comment on the same line or within the three lines above it.
//! * **R4 gate-integrity cross-check** — every key in `ci_perf_gate`'s
//!   `GATED_EXACT` array must appear (by leaf name) in a string literal of
//!   some bench emitter source, so a gate can never be silently disarmed
//!   by renaming or deleting its emitter while the gate list still looks
//!   intact.
//!
//! Structural tracking (brace depth, `#[cfg(test)]` regions, hot-function
//! bodies) is a single forward pass over stripped lines; see
//! [`scan_file`].

use crate::scan::strip_source;
use std::fmt;
use std::path::{Path, PathBuf};

/// Which rule family produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// R1: allocation in a `// m2x-lint: hot` function.
    HotAlloc,
    /// R2: panicking construct in engine/gateway code.
    PanicDiscipline,
    /// R3: `unsafe` without an adjacent `// SAFETY:` comment.
    UnsafeSafety,
    /// R4: `GATED_EXACT` key with no bench emitter.
    GateIntegrity,
    /// Malformed or dangling `// m2x-lint:` marker.
    Marker,
    /// A file or directory the scanner could not read.
    Io,
}

impl Rule {
    /// Stable short code used in reports (`R1`..`R4`, `M`, `IO`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::HotAlloc => "R1-hot-alloc",
            Rule::PanicDiscipline => "R2-panic",
            Rule::UnsafeSafety => "R3-unsafe",
            Rule::GateIntegrity => "R4-gate",
            Rule::Marker => "marker",
            Rule::Io => "io",
        }
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: PathBuf,
    /// 1-based line number (0 for whole-file findings such as R4/io).
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.code(),
            self.message
        )
    }
}

/// Per-file rule switches, decided by the workspace walker from the path.
#[derive(Debug, Clone, Copy)]
pub struct FileOpts {
    /// Enforce R2 (panic discipline). Engine crates only; research/bench
    /// tooling and test-support paths run with this off.
    pub panic_discipline: bool,
    /// The whole file is test code (`tests/`, `benches/`, `examples/`):
    /// R1/R2 are off, but R3 (unsafe audit) still applies.
    pub test_file: bool,
}

/// Allocation patterns banned inside `// m2x-lint: hot` functions.
/// Matched against stripped code, so prose and string contents never fire.
const ALLOC_PATTERNS: &[(&str, bool)] = &[
    // (pattern, require non-ident char before)
    ("Vec::new", true),
    ("Vec::from", true),
    ("Vec::with_capacity", true),
    ("vec!", true),
    (".to_vec", false),
    (".collect(", false),
    (".collect::", false),
    ("Box::new", true),
    ("format!", true),
    ("String::new", true),
    ("String::from", true),
    (".to_string(", false),
    (".to_owned(", false),
    (".clone()", false),
];

/// Panicking constructs banned by R2 outside test code.
const PANIC_PATTERNS: &[(&str, bool)] = &[
    (".unwrap()", false),
    (".expect(", false),
    ("panic!", true),
    ("todo!", true),
    ("unimplemented!", true),
];

/// `pat` occurs in `code` with (optionally) a non-identifier char before it.
fn has_pattern(code: &str, pat: &str, boundary_before: bool) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let at = start + pos;
        if !boundary_before {
            return true;
        }
        let prev = code[..at].chars().next_back();
        if !matches!(prev, Some(c) if c.is_alphanumeric() || c == '_') {
            return true;
        }
        start = at + pat.len();
    }
    false
}

/// `unsafe` as a standalone keyword (not `unsafe_code` etc.).
fn has_unsafe_keyword(code: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find("unsafe") {
        let at = start + pos;
        let prev_ok = code[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let next_ok = code[at + 6..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if prev_ok && next_ok {
            return true;
        }
        start = at + 6;
    }
    false
}

/// A parsed `// m2x-lint:` marker.
#[derive(Debug, PartialEq, Eq)]
enum Marker {
    Hot,
    AllowAlloc,
    AllowPanic,
    /// Recognised prefix, bad directive or missing reason; payload is the
    /// complaint.
    Malformed(String),
}

/// Extract the `m2x-lint:` marker (if any) from a line's comment text.
///
/// A marker must *start* the comment (`// m2x-lint: ...`): prose that
/// merely mentions the grammar — docs, quoted examples — never counts.
/// Doc comments (`///`, `//!`) cannot carry markers either; their third
/// char lands in the comment text and breaks the prefix match, which is
/// intended: markers are instructions to the linter, not documentation.
fn parse_marker(comment: &str) -> Option<Marker> {
    let rest = comment.trim_start().strip_prefix("m2x-lint:")?;
    let rest = rest.trim();
    if rest == "hot" || rest.starts_with("hot ") {
        return Some(Marker::Hot);
    }
    for (prefix, ok, name) in [
        ("allow(alloc)", Marker::AllowAlloc, "allow(alloc)"),
        ("allow(panic)", Marker::AllowPanic, "allow(panic)"),
    ] {
        if let Some(reason) = rest.strip_prefix(prefix) {
            if reason.trim().is_empty() {
                return Some(Marker::Malformed(format!(
                    "`{name}` marker requires a reason: `// m2x-lint: {name} <why>`"
                )));
            }
            return Some(ok);
        }
    }
    Some(Marker::Malformed(format!(
        "unknown m2x-lint directive `{rest}` (expected `hot`, `allow(alloc) <reason>` or `allow(panic) <reason>`)"
    )))
}

/// An active structural region, closed when brace depth returns to
/// `close_depth`.
struct Region {
    kind: RegionKind,
    close_depth: usize,
}

enum RegionKind {
    /// `#[cfg(test)]` / `#[test]` item: R1/R2 are suspended inside.
    Test,
    /// Body of a `// m2x-lint: hot` function; payload is the fn name.
    Hot(String),
}

/// Scan one file's source text. `path` is used only for reporting.
pub fn scan_file(path: &Path, src: &str, opts: FileOpts) -> Vec<Finding> {
    let lines = strip_source(src);
    let mut findings = Vec::new();
    let mut regions: Vec<Region> = Vec::new();
    let mut depth = 0usize;
    // Attribute/marker state that attaches to an upcoming item.
    let mut pending_test = false;
    let mut pending_hot: Option<usize> = None; // marker line (1-based)
    let mut hot_fn_seen = false;
    let mut hot_fn_name = String::new();
    // allow(...) markers apply to their own line and the next code line.
    let mut allow_alloc_next = false;
    let mut allow_panic_next = false;

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        // --- marker parsing -------------------------------------------------
        let mut allow_alloc_here = allow_alloc_next && !line.code.trim().is_empty();
        let mut allow_panic_here = allow_panic_next && !line.code.trim().is_empty();
        if allow_alloc_here {
            allow_alloc_next = false;
        }
        if allow_panic_here {
            allow_panic_next = false;
        }
        match parse_marker(&line.comment) {
            Some(Marker::Hot) => {
                if pending_hot.is_some() {
                    findings.push(Finding {
                        file: path.to_path_buf(),
                        line: lineno,
                        rule: Rule::Marker,
                        message:
                            "dangling `m2x-lint: hot` marker: previous one never attached to a fn"
                                .into(),
                    });
                }
                pending_hot = Some(lineno);
                hot_fn_seen = false;
            }
            Some(Marker::AllowAlloc) => {
                if line.code.trim().is_empty() {
                    allow_alloc_next = true;
                } else {
                    allow_alloc_here = true;
                }
            }
            Some(Marker::AllowPanic) => {
                if line.code.trim().is_empty() {
                    allow_panic_next = true;
                } else {
                    allow_panic_here = true;
                }
            }
            Some(Marker::Malformed(msg)) => {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule: Rule::Marker,
                    message: msg,
                });
            }
            None => {}
        }

        // --- attribute / item tracking --------------------------------------
        if line.code.contains("#[cfg(test)]")
            || line.code.contains("#[cfg(all(test")
            || line.code.contains("#[cfg(any(test")
            || line.code.contains("#[test]")
        {
            pending_test = true;
        }
        if pending_hot.is_some() && !hot_fn_seen && has_pattern(&line.code, "fn ", true) {
            hot_fn_seen = true;
            hot_fn_name = fn_name_on_line(&line.code);
        }

        // --- rule state for this line ---------------------------------------
        let in_test = opts.test_file
            || regions.iter().any(|r| matches!(r.kind, RegionKind::Test))
            || pending_test;
        let hot_name = regions.iter().rev().find_map(|r| match &r.kind {
            RegionKind::Hot(name) => Some(name.clone()),
            _ => None,
        });
        // A single-line hot fn (`// m2x-lint: hot` above `fn f() { .. }`)
        // opens and closes its region mid-line; treat the fn line itself as
        // hot so nothing slips through.
        let hot_name = hot_name.or_else(|| {
            if pending_hot.is_some() && hot_fn_seen {
                Some(hot_fn_name.clone())
            } else {
                None
            }
        });

        // --- R1: allocation in hot fn ---------------------------------------
        if let Some(name) = &hot_name {
            if !in_test && !allow_alloc_here {
                for (pat, boundary) in ALLOC_PATTERNS {
                    if has_pattern(&line.code, pat, *boundary) {
                        findings.push(Finding {
                            file: path.to_path_buf(),
                            line: lineno,
                            rule: Rule::HotAlloc,
                            message: format!(
                                "allocating construct `{pat}` in hot function `{name}` (annotate `// m2x-lint: allow(alloc) <reason>` if intended)"
                            ),
                        });
                    }
                }
            }
        }

        // --- R2: panic discipline -------------------------------------------
        if opts.panic_discipline && !in_test && !allow_panic_here {
            if line.code.contains(".lock().unwrap()") || line.code.contains(".lock().expect(") {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule: Rule::PanicDiscipline,
                    message: "`.lock().unwrap()` — use the poison-tolerant helper (`lock_poisoned`-style `unwrap_or_else(PoisonError::into_inner)`)".into(),
                });
            } else {
                for (pat, boundary) in PANIC_PATTERNS {
                    if has_pattern(&line.code, pat, *boundary) {
                        findings.push(Finding {
                            file: path.to_path_buf(),
                            line: lineno,
                            rule: Rule::PanicDiscipline,
                            message: format!(
                                "panicking construct `{pat}` in engine code (return an error, or annotate `// m2x-lint: allow(panic) <reason>`)"
                            ),
                        });
                    }
                }
            }
        }

        // --- R3: unsafe audit ------------------------------------------------
        if has_unsafe_keyword(&line.code) {
            let safety_near = line.comment.contains("SAFETY")
                || lines[i.saturating_sub(3)..i]
                    .iter()
                    .any(|l| l.comment.contains("SAFETY"));
            if !safety_near {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule: Rule::UnsafeSafety,
                    message: "`unsafe` without an adjacent `// SAFETY:` comment".into(),
                });
            }
        }

        // --- brace walk: open/close regions ----------------------------------
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_test {
                        regions.push(Region {
                            kind: RegionKind::Test,
                            close_depth: depth,
                        });
                        pending_test = false;
                    }
                    if pending_hot.is_some() && hot_fn_seen {
                        regions.push(Region {
                            kind: RegionKind::Hot(std::mem::take(&mut hot_fn_name)),
                            close_depth: depth,
                        });
                        pending_hot = None;
                        hot_fn_seen = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while regions.last().is_some_and(|r| r.close_depth >= depth) {
                        regions.pop();
                    }
                }
                ';' => {
                    // `#[cfg(test)] use ...;` / `#[cfg(test)] mod tests;`
                    // never open a brace: drop the pending attribute so it
                    // can't leak onto the next unrelated item. Same for a
                    // hot marker landing on a trait method declaration.
                    if pending_test && depth_has_no_open_pending(&regions, depth) {
                        pending_test = false;
                    }
                    if hot_fn_seen {
                        pending_hot = None;
                        hot_fn_seen = false;
                    }
                }
                _ => {}
            }
        }
    }
    if let Some(tag_line) = pending_hot {
        findings.push(Finding {
            file: path.to_path_buf(),
            line: tag_line,
            rule: Rule::Marker,
            message: "`m2x-lint: hot` marker never attached to a function body".into(),
        });
    }
    findings
}

/// `;` handling helper: pending attributes are only cancelled when we are
/// not inside a brace we just opened on this construct. With line-level
/// granularity the simple rule "cancel if no region was opened at this
/// depth" is exact enough for attribute-on-item Rust.
fn depth_has_no_open_pending(regions: &[Region], depth: usize) -> bool {
    regions.last().is_none_or(|r| r.close_depth < depth)
}

/// Best-effort fn-name extraction from a (stripped) line for messages.
fn fn_name_on_line(code: &str) -> String {
    if let Some(pos) = code.find("fn ") {
        let rest = &code[pos + 3..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            return name;
        }
    }
    "<fn>".into()
}

/// R4: every `GATED_EXACT` key in `ci_perf_gate.rs` must be emitted (by
/// leaf name) somewhere in the bench crate's JSON emitters.
pub fn check_gate_integrity(root: &Path) -> Vec<Finding> {
    let gate_path = root.join("crates/bench/src/bin/ci_perf_gate.rs");
    let mut findings = Vec::new();
    let gate_src = match std::fs::read_to_string(&gate_path) {
        Ok(s) => s,
        Err(e) => {
            findings.push(Finding {
                file: gate_path,
                line: 0,
                rule: Rule::Io,
                message: format!("cannot read gate source: {e}"),
            });
            return findings;
        }
    };
    let lines = strip_source(&gate_src);
    let mut keys: Vec<(usize, String)> = Vec::new();
    let mut in_array = false;
    for (i, line) in lines.iter().enumerate() {
        if !in_array {
            if line.code.contains("GATED_EXACT") {
                in_array = true;
            } else {
                continue;
            }
        }
        for s in &line.strings {
            keys.push((i + 1, s.clone()));
        }
        // Stop at the array's terminator. `];` (not a bare `]`) so the
        // `[&str; N]` type annotation on the declaration line doesn't end
        // collection before it starts.
        if line.code.contains("];") {
            break;
        }
    }
    if keys.is_empty() {
        findings.push(Finding {
            file: gate_path,
            line: 0,
            rule: Rule::GateIntegrity,
            message: "no GATED_EXACT keys found — gate list missing or renamed".into(),
        });
        return findings;
    }

    // Collect every string literal in the bench crate outside the gate
    // binary itself: those are the candidate emitters.
    let mut emitter_strings: Vec<String> = Vec::new();
    let bench_src = root.join("crates/bench/src");
    let mut stack = vec![bench_src];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) => {
                findings.push(Finding {
                    file: dir,
                    line: 0,
                    rule: Rule::Io,
                    message: format!("cannot read dir: {e}"),
                });
                continue;
            }
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs")
                && p.file_name().is_some_and(|n| n != "ci_perf_gate.rs")
            {
                if let Ok(src) = std::fs::read_to_string(&p) {
                    for line in strip_source(&src) {
                        emitter_strings.extend(line.strings);
                    }
                }
            }
        }
    }

    for (lineno, key) in &keys {
        let leaf = key.rsplit('.').next().unwrap_or(key);
        let emitted = emitter_strings.iter().any(|s| s.contains(leaf));
        if !emitted {
            findings.push(Finding {
                file: gate_path.clone(),
                line: *lineno,
                rule: Rule::GateIntegrity,
                message: format!(
                    "gated key `{key}`: no bench emitter mentions `{leaf}` — the gate would silently disarm (missing-key = fail, but nothing would ever emit it)"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINE: FileOpts = FileOpts {
        panic_discipline: true,
        test_file: false,
    };
    const TOOLING: FileOpts = FileOpts {
        panic_discipline: false,
        test_file: false,
    };

    fn scan(src: &str, opts: FileOpts) -> Vec<Finding> {
        scan_file(Path::new("fixture.rs"), src, opts)
    }

    // ---- R1 fixtures ----

    #[test]
    fn r1_flags_alloc_in_hot_fn() {
        let src = "\
// m2x-lint: hot
fn kernel(xs: &[f32]) -> Vec<f32> {
    let out = Vec::new();
    out
}
";
        let f = scan(src, TOOLING);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::HotAlloc);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("kernel"));
    }

    #[test]
    fn r1_ignores_alloc_outside_hot_fn() {
        let src = "\
fn cold() -> Vec<f32> {
    let v = vec![0.0; 4];
    v.clone()
}
// m2x-lint: hot
fn hot(acc: &mut f32, xs: &[f32]) {
    for x in xs { *acc += x; }
}
fn cold_again() -> String {
    format!(\"{}\", 1)
}
";
        assert!(scan(src, TOOLING).is_empty());
    }

    #[test]
    fn r1_allow_marker_suppresses_with_reason() {
        let src = "\
// m2x-lint: hot
fn hot() {
    // m2x-lint: allow(alloc) one-off output buffer, amortised by caller
    let out = Vec::with_capacity(8);
    drop(out);
}
";
        assert!(scan(src, TOOLING).is_empty());
    }

    #[test]
    fn r1_allow_marker_without_reason_is_itself_a_finding() {
        let src = "\
// m2x-lint: hot
fn hot() {
    // m2x-lint: allow(alloc)
    let out = Vec::new();
    drop(out);
}
";
        let f = scan(src, TOOLING);
        assert!(f.iter().any(|f| f.rule == Rule::Marker), "{f:?}");
        assert!(f.iter().any(|f| f.rule == Rule::HotAlloc), "{f:?}");
    }

    #[test]
    fn r1_hot_region_ends_at_fn_close() {
        let src = "\
// m2x-lint: hot
fn hot() {
    let x = 1;
    if x > 0 {
        noop();
    }
}
fn after() -> Vec<u8> { Vec::new() }
";
        assert!(scan(src, TOOLING).is_empty());
    }

    #[test]
    fn r1_same_line_fn_body_is_covered() {
        let src = "\
// m2x-lint: hot
fn hot() { let v = vec![1]; drop(v); }
";
        let f = scan(src, TOOLING);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::HotAlloc);
    }

    #[test]
    fn r1_alloc_in_comment_or_string_is_ignored() {
        let src = "\
// m2x-lint: hot
fn hot() {
    // a note that says Vec::new is banned here
    let s = \"Vec::new, vec![, .clone()\";
    let _ = s;
}
";
        assert!(scan(src, TOOLING).is_empty());
    }

    #[test]
    fn dangling_hot_marker_is_reported() {
        let src = "// m2x-lint: hot\nconst X: usize = 3;\n";
        let f = scan(src, TOOLING);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Marker);
    }

    // ---- R2 fixtures ----

    #[test]
    fn r2_flags_unwrap_expect_panic() {
        let src = "\
fn run(x: Option<u32>) -> u32 {
    let v = x.unwrap();
    let w = x.expect(\"needed\");
    if v + w == 0 { panic!(\"boom\"); }
    v
}
";
        let f = scan(src, ENGINE);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::PanicDiscipline));
    }

    #[test]
    fn r2_lock_unwrap_gets_specific_message() {
        let src = "fn stats(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n";
        let f = scan(src, ENGINE);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("poison-tolerant"));
    }

    #[test]
    fn r2_unwrap_or_else_is_fine() {
        let src = "\
use std::sync::PoisonError;
fn stats(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}
fn fallback(x: Option<u32>) -> u32 { x.unwrap_or(0) }
fn fallback2(x: Option<u32>) -> u32 { x.unwrap_or_default() }
";
        assert!(scan(src, ENGINE).is_empty());
    }

    #[test]
    fn r2_skips_cfg_test_modules() {
        let src = "\
fn engine() -> u32 { 7 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        std::panic::catch_unwind(|| panic!(\"ok in tests\")).unwrap_err();
    }
}
";
        assert!(scan(src, ENGINE).is_empty());
    }

    #[test]
    fn r2_resumes_after_test_module_closes() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
fn engine(x: Option<u32>) -> u32 { x.unwrap() }
";
        let f = scan(src, ENGINE);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn r2_cfg_test_on_use_statement_does_not_leak() {
        let src = "\
#[cfg(test)]
use std::collections::HashMap;
fn engine(x: Option<u32>) -> u32 { x.unwrap() }
";
        let f = scan(src, ENGINE);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn r2_allow_panic_with_reason() {
        let src = "\
fn engine() {
    // m2x-lint: allow(panic) fault-injection trigger, test-only config
    panic!(\"injected\");
}
";
        assert!(scan(src, ENGINE).is_empty());
    }

    #[test]
    fn r2_off_for_tooling_crates() {
        let src = "fn main() { std::fs::read(\"x\").unwrap(); }\n";
        assert!(scan(src, TOOLING).is_empty());
    }

    // ---- R3 fixtures ----

    #[test]
    fn r3_flags_unsafe_without_safety() {
        let src = "\
fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
";
        let f = scan(src, ENGINE);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnsafeSafety);
    }

    #[test]
    fn r3_safety_comment_satisfies() {
        let src = "\
fn peek(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}
";
        assert!(scan(src, ENGINE).is_empty());
    }

    #[test]
    fn r3_applies_even_in_test_files() {
        let opts = FileOpts {
            panic_discipline: false,
            test_file: true,
        };
        let src = "#[test]\nfn t() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let f = scan(src, opts);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnsafeSafety);
    }

    #[test]
    fn r3_forbid_unsafe_code_attr_is_not_unsafe() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(scan(src, ENGINE).is_empty());
    }

    // ---- pattern helpers ----

    #[test]
    fn boundary_check_rejects_identifier_suffixes() {
        assert!(!has_pattern("my_vec![3]", "vec!", true));
        assert!(has_pattern("vec![3]", "vec!", true));
        assert!(has_pattern("let v = vec![3];", "vec!", true));
        assert!(!has_pattern("MyVec::new()", "Vec::new", true));
        assert!(has_pattern("Vec::new()", "Vec::new", true));
        assert!(!has_unsafe_keyword("#![forbid(unsafe_code)]"));
        assert!(has_unsafe_keyword("unsafe { x }"));
        assert!(has_unsafe_keyword("pub unsafe fn f()"));
    }
}
