//! # m2x-lint — in-repo static analysis for the M2XFP engine stack
//!
//! A std-only, hand-rolled Rust source scanner (line/token level, no
//! external parser) that walks every workspace crate and enforces the
//! invariants the serving stack's correctness claims rest on:
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1 `hot-alloc` | functions tagged `// m2x-lint: hot` contain no allocating constructs |
//! | R2 `panic` | engine/gateway code never `unwrap`s/`panic`s; locks are poison-tolerant |
//! | R3 `unsafe` | every `unsafe` carries an adjacent `// SAFETY:` comment |
//! | R4 `gate` | every `GATED_EXACT` CI gate key has a live bench emitter |
//!
//! Run it with `cargo run -p m2x-lint` from anywhere in the workspace; it
//! exits non-zero if any finding is produced. The marker grammar and the
//! rationale for each rule are catalogued in `docs/INVARIANTS.md`.
//!
//! ## Scope policy
//!
//! *Engine crates* (`core`, `nn`, `serve`, `gateway`, `formats`, `tensor`,
//! `telemetry`, `lint` itself, and the umbrella `src/`) get all four rule
//! families.
//! *Research/tooling crates* (`bench`, `baselines`, `accel`, `criterion`)
//! are exempt from R2 — experiment drivers may `expect()` on their own
//! config — but still get R1 (hot tags), R3 and R4. Test code
//! (`#[cfg(test)]` regions, `tests/`, `benches/`, `examples/` trees) is
//! exempt from R1/R2 but never from R3: unsafe in tests still needs its
//! safety argument.

pub mod rules;
pub mod scan;

pub use rules::{check_gate_integrity, scan_file, FileOpts, Finding, Rule};
pub use scan::{strip_source, Line};

use std::path::{Path, PathBuf};

/// Crates whose non-test code must be panic-free (R2).
const ENGINE_CRATES: &[&str] = &[
    "core",
    "nn",
    "serve",
    "gateway",
    "formats",
    "tensor",
    "telemetry",
    "lint",
];

/// Summary of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Walk the workspace rooted at `root` and apply all rule families.
///
/// Scans `src/` plus every `crates/*/{src,tests,benches,examples}` tree,
/// then runs the R4 gate-integrity cross-check once. Unreadable files
/// become `Rule::Io` findings rather than panics, so the linter itself
/// honours R2.
pub fn scan_workspace(root: &Path) -> Report {
    let mut report = Report::default();
    let mut targets: Vec<(PathBuf, FileOpts)> = Vec::new();

    // Umbrella crate: engine scope (it re-exports the public API and hosts
    // the testkit used by every other crate's tests).
    collect_tree(root.join("src"), engine_opts(false), &mut targets);
    collect_tree(root.join("tests"), engine_opts(true), &mut targets);

    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crates.sort();
        for krate in crates {
            let name = krate
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let engine = ENGINE_CRATES.contains(&name.as_str());
            collect_tree(
                krate.join("src"),
                FileOpts {
                    panic_discipline: engine,
                    test_file: false,
                },
                &mut targets,
            );
            for test_tree in ["tests", "benches", "examples"] {
                collect_tree(
                    krate.join(test_tree),
                    FileOpts {
                        panic_discipline: false,
                        test_file: true,
                    },
                    &mut targets,
                );
            }
        }
    }

    targets.sort_by(|a, b| a.0.cmp(&b.0));
    for (path, opts) in targets {
        match std::fs::read_to_string(&path) {
            Ok(src) => {
                report.files_scanned += 1;
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                report.findings.extend(scan_file(&rel, &src, opts));
            }
            Err(e) => report.findings.push(Finding {
                file: path,
                line: 0,
                rule: Rule::Io,
                message: format!("cannot read: {e}"),
            }),
        }
    }

    let mut gate_findings = check_gate_integrity(root);
    for f in &mut gate_findings {
        if let Ok(rel) = f.file.strip_prefix(root) {
            f.file = rel.to_path_buf();
        }
    }
    report.findings.extend(gate_findings);
    report
}

fn engine_opts(test_file: bool) -> FileOpts {
    FileOpts {
        panic_discipline: !test_file,
        test_file,
    }
}

/// Recursively collect `.rs` files under `dir` (silently skipped if the
/// directory does not exist — not every crate has every tree).
fn collect_tree(dir: PathBuf, opts: FileOpts, out: &mut Vec<(PathBuf, FileOpts)>) {
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_tree(p, opts, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push((p, opts));
        }
    }
}

/// Locate the workspace root: walk upward from `start` until a
/// `Cargo.toml` containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
