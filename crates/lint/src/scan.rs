//! Line-level source stripping: the scanner's front end.
//!
//! Rust source is reduced to per-line records in one pass: code with
//! comment text removed and string/char literal *contents* blanked (so
//! rule patterns never fire on prose), the comment text itself (where the
//! `// m2x-lint:` markers and `// SAFETY:` audits live), and the extracted
//! string-literal contents (which the R4 gate-integrity cross-check
//! matches emitted metric keys against).
//!
//! The stripper is deliberately not a parser: it tracks exactly the
//! lexical state needed to answer "is this byte code, comment, or
//! literal?" — nested block comments, raw strings (`r#"..."#` at any hash
//! depth), byte strings, char literals vs lifetimes, escapes — and nothing
//! more. Everything structural (brace depth, `#[cfg(test)]` regions, hot
//! function bodies) is layered on the stripped code lines in `rules`.

/// One source line after stripping.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Source text with comments removed and literal contents blanked.
    /// String literals collapse to `""`, char literals to `' '`; structure
    /// (`.expect(`, braces, `;`) survives, prose does not.
    pub code: String,
    /// Concatenated comment text of the line (line and block comments).
    pub comment: String,
    /// Contents of string literals that *end* on this line.
    pub strings: Vec<String>,
}

/// Lexical state carried across characters (and lines).
enum State {
    Code,
    LineComment,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"..."`; `true` while skipping one escaped char.
    Str(bool),
    /// Inside `r##"..."##`; payload is the hash count.
    RawStr(u32),
    /// Inside `'...'`; `true` while skipping one escaped char.
    CharLit(bool),
}

/// Strips `src` into per-line records. Never fails: unterminated literals
/// or comments simply run to end of input (the rules layer only sees
/// blanked text for them, which is the safe direction for a linter).
pub fn strip_source(src: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut str_buf = String::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Line comments end at the newline; every other state persists.
            // Strings keep accumulating across the break.
            match state {
                State::LineComment => state = State::Code,
                State::Str(_) | State::RawStr(_) => str_buf.push('\n'),
                _ => {}
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match (c, next) {
                    ('/', Some('/')) => {
                        state = State::LineComment;
                        i += 2;
                    }
                    ('/', Some('*')) => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    ('"', _) => {
                        state = State::Str(false);
                        str_buf.clear();
                        i += 1;
                    }
                    ('r', Some('"' | '#')) if is_raw_string_start(&chars, i) => {
                        let mut hashes = 0u32;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        // is_raw_string_start guarantees the quote is here.
                        state = State::RawStr(hashes);
                        str_buf.clear();
                        i = j + 1;
                    }
                    ('b', Some('"')) => {
                        line.code.push('b');
                        state = State::Str(false);
                        str_buf.clear();
                        i += 2;
                    }
                    ('b', Some('r')) if raw_quote_after(&chars, i + 1).is_some() => {
                        // `br"..."` / `br#"..."#` — the boundary check that
                        // guards bare `r` does not apply here; the `b` is
                        // the prefix, not an identifier tail.
                        let hashes = raw_quote_after(&chars, i + 1).unwrap_or(0);
                        line.code.push_str("br");
                        state = State::RawStr(hashes);
                        str_buf.clear();
                        i = i + 3 + hashes as usize;
                    }
                    ('\'', _) => {
                        if is_char_literal(&chars, i) {
                            state = State::CharLit(false);
                            line.code.push_str("' ");
                            i += 1;
                        } else {
                            // A lifetime: emit the tick, stay in code.
                            line.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                match (c, next) {
                    ('/', Some('*')) => {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    }
                    ('*', Some('/')) => {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        i += 2;
                    }
                    _ => {
                        line.comment.push(c);
                        i += 1;
                    }
                }
            }
            State::Str(escaped) => {
                if escaped {
                    str_buf.push(c);
                    state = State::Str(false);
                } else if c == '\\' {
                    state = State::Str(true);
                } else if c == '"' {
                    line.code.push_str("\"\"");
                    line.strings.push(std::mem::take(&mut str_buf));
                    state = State::Code;
                } else {
                    str_buf.push(c);
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    line.code.push_str("\"\"");
                    line.strings.push(std::mem::take(&mut str_buf));
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    str_buf.push(c);
                    i += 1;
                }
            }
            State::CharLit(escaped) => {
                if escaped {
                    state = State::CharLit(false);
                } else if c == '\\' {
                    state = State::CharLit(true);
                } else if c == '\'' {
                    state = State::Code;
                }
                i += 1;
            }
        }
    }
    // A trailing unterminated string/comment: keep whatever accumulated.
    if !str_buf.is_empty() {
        line.strings.push(str_buf);
    }
    if !line.code.is_empty() || !line.comment.is_empty() || !line.strings.is_empty() {
        lines.push(line);
    }
    lines
}

/// `chars[i] == 'r'`: is this the start of a raw string literal
/// (`r"` or `r#...#"`), as opposed to an identifier ending in `r`?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // The previous char must not be part of an identifier (e.g. `ptr"x"`
    // cannot happen, but `for r in` must not trigger on `r"` lookalikes).
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// `chars[j]` is expected to be the `r` of a `br` prefix: returns the hash
/// count if an opening `#*"` follows, i.e. this really is a raw string.
fn raw_quote_after(chars: &[char], j: usize) -> Option<u32> {
    if chars.get(j) != Some(&'r') {
        return None;
    }
    let mut hashes = 0u32;
    let mut k = j + 1;
    while chars.get(k) == Some(&'#') {
        hashes += 1;
        k += 1;
    }
    (chars.get(k) == Some(&'"')).then_some(hashes)
}

/// At a `"` inside a raw string with `hashes` hashes: does it close the
/// literal (i.e. is it followed by exactly the right number of `#`)?
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// At a `'` in code: char literal (`'a'`, `'\n'`, `'\u{1F600}'`) vs
/// lifetime (`'a`, `'static`). A tick followed by an escape is always a
/// char literal; otherwise it is one exactly when the very next char is
/// closed by a tick right after it.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_and_captured() {
        let lines = strip_source("let x = 1; // trailing note\n/* block */ let y = 2;\n");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert_eq!(lines[0].comment.trim(), "trailing note");
        assert_eq!(lines[1].code.trim(), "let y = 2;");
        assert_eq!(lines[1].comment.trim(), "block");
    }

    #[test]
    fn nested_block_comments() {
        let lines = strip_source("a /* one /* two */ still */ b\n");
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let lines = strip_source("code1 /* start\nmiddle unwrap()\nend */ code2\n");
        assert_eq!(lines[0].code.trim(), "code1");
        assert_eq!(lines[1].code, "");
        assert!(lines[1].comment.contains("unwrap"));
        assert_eq!(lines[2].code.trim(), "code2");
    }

    #[test]
    fn string_contents_are_blanked_but_recorded() {
        let lines = strip_source("emit(\"panic! inside a string\");\n");
        assert_eq!(lines[0].code, "emit(\"\");");
        assert_eq!(lines[0].strings, vec!["panic! inside a string"]);
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let lines = strip_source("let s = \"a \\\" b\"; s.unwrap();\n");
        assert_eq!(lines[0].code, "let s = \"\"; s.unwrap();");
        assert_eq!(lines[0].strings, vec!["a \" b"]);
    }

    #[test]
    fn raw_strings_at_hash_depth() {
        let lines = strip_source("let s = r#\"quote \" inside\"#; done();\n");
        assert_eq!(lines[0].code, "let s = \"\"; done();");
        assert_eq!(lines[0].strings, vec!["quote \" inside"]);
        let lines = strip_source("let s = r\"plain raw\";\n");
        assert_eq!(lines[0].strings, vec!["plain raw"]);
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let lines = strip_source("w(b\"bytes\"); w(br#\"raw bytes\"#);\n");
        assert_eq!(lines[0].code, "w(b\"\"); w(br\"\");");
        assert_eq!(lines[0].strings, vec!["bytes", "raw bytes"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lines = strip_source("fn f<'a>(x: &'a str) { let c = '\\''; let d = 'x'; }\n");
        assert!(lines[0].code.contains("fn f<'a>(x: &'a str)"));
        assert!(!lines[0].code.contains("'x'"));
        // A quote char inside a char literal must not open a string.
        let lines = strip_source("let q = '\"'; still_code();\n");
        assert!(lines[0].code.contains("still_code"));
        assert!(lines[0].strings.is_empty());
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let lines = strip_source("for r in 0..n { tr\"x\"; }\n");
        // `tr"x"` parses as ident then a plain string — not a raw string.
        assert_eq!(lines[0].strings, vec!["x"]);
    }

    #[test]
    fn multiline_string_contents_attach_to_closing_line() {
        let lines = strip_source("let s = \"one\ntwo\";\nafter();\n");
        assert!(lines[0].strings.is_empty());
        assert_eq!(lines[1].strings, vec!["one\ntwo"]);
        assert_eq!(lines[2].code, "after();");
    }
}
