//! The workspace self-test: the repository must lint clean under its own
//! rules. This is the same scan `cargo run -p m2x-lint` performs and the
//! CI check lane gates on — running it as a test keeps `cargo test`
//! sufficient to catch a discipline regression locally.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let report = m2x_lint::scan_workspace(&root);
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}): did the walk miss the crates?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.is_clean(),
        "m2x-lint found {} violation(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}
