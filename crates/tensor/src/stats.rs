//! Error metrics and distribution statistics.
//!
//! The paper quantifies quantization fidelity with mean squared error against
//! FP16 (§4.2.1) and reports perplexity/accuracy downstream; these helpers
//! compute the error side of that pipeline plus the shape statistics
//! (kurtosis, quantiles) used to calibrate the synthetic model profiles.

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty input");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Normalized MSE: `mse(a, b) / mean(a²)`. Returns 0 when `a` is all zeros
/// and `b == a`.
pub fn nmse(reference: &[f32], approx: &[f32]) -> f64 {
    let num = mse(reference, approx);
    let denom = reference
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        / reference.len() as f64;
    if denom == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / denom
    }
}

/// Root of [`nmse`] — the relative RMS error used by the nn proxies.
pub fn nrmse(reference: &[f32], approx: &[f32]) -> f64 {
    nmse(reference, approx).sqrt()
}

/// Signal-to-quantization-noise ratio in dB (`10·log10(1/NMSE)`).
pub fn sqnr_db(reference: &[f32], approx: &[f32]) -> f64 {
    let n = nmse(reference, approx);
    if n == 0.0 {
        f64::INFINITY
    } else {
        -10.0 * n.log10()
    }
}

/// Largest absolute elementwise deviation.
pub fn max_abs_err(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .fold(0.0f32, |m, (&x, &y)| m.max((x - y).abs()))
}

/// Cosine similarity (1.0 for identical directions; 0 when either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len());
    let (mut dot, mut na, mut nb) = (0f64, 0f64, 0f64);
    for (&x, &y) in a.iter().zip(b) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Sample mean.
pub fn mean(xs: &[f32]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
}

/// Population variance.
pub fn variance(xs: &[f32]) -> f64 {
    let m = mean(xs);
    xs.iter()
        .map(|&x| {
            let d = x as f64 - m;
            d * d
        })
        .sum::<f64>()
        / xs.len() as f64
}

/// Excess kurtosis (0 for a Gaussian; positive = heavy tails). Returns 0 for
/// degenerate (zero-variance) inputs.
pub fn excess_kurtosis(xs: &[f32]) -> f64 {
    let m = mean(xs);
    let var = variance(xs);
    if var == 0.0 {
        return 0.0;
    }
    let m4 = xs
        .iter()
        .map(|&x| {
            let d = x as f64 - m;
            d * d * d * d
        })
        .sum::<f64>()
        / xs.len() as f64;
    m4 / (var * var) - 3.0
}

/// The `q`-quantile (0..=1) of the absolute values, by sorting a copy.
pub fn abs_quantile(xs: &[f32], q: f64) -> f32 {
    assert!(!xs.is_empty());
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let mut v: Vec<f32> = xs.iter().map(|x| x.abs()).collect();
    v.sort_by(|a, b| a.total_cmp(b));
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        let a = [1.0f32, -2.0, 3.0];
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(nmse(&a, &a), 0.0);
        assert_eq!(sqnr_db(&a, &a), f64::INFINITY);
    }

    #[test]
    fn mse_known_value() {
        let a = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        assert_eq!(mse(&a, &b), 12.5);
        assert_eq!(max_abs_err(&a, &b), 4.0);
    }

    #[test]
    fn nmse_scale_invariant() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [1.1f32, 2.1, 2.9, 4.2];
        let a10: Vec<f32> = a.iter().map(|x| x * 10.0).collect();
        let b10: Vec<f32> = b.iter().map(|x| x * 10.0).collect();
        // f32 rounding of the scaled inputs leaves a small residual.
        let rel = (nmse(&a, &b) - nmse(&a10, &b10)).abs() / nmse(&a, &b);
        assert!(rel < 1e-4, "relative deviation {rel}");
    }

    #[test]
    fn sqnr_10x_error_is_20db() {
        let reference = vec![1.0f32; 1000];
        let n1: Vec<f32> = reference.iter().map(|x| x + 0.01).collect();
        let n2: Vec<f32> = reference.iter().map(|x| x + 0.1).collect();
        let d = sqnr_db(&reference, &n1) - sqnr_db(&reference, &n2);
        // 0.01 and 1.01 are not exactly representable in f32.
        assert!((d - 20.0).abs() < 0.01, "delta {d}");
    }

    #[test]
    fn cosine_bounds() {
        let a = [1.0f32, 0.0];
        assert_eq!(cosine(&a, &[2.0, 0.0]), 1.0);
        assert_eq!(cosine(&a, &[0.0, 5.0]), 0.0);
        assert_eq!(cosine(&a, &[-3.0, 0.0]), -1.0);
    }

    #[test]
    fn kurtosis_gaussian_vs_heavy() {
        use crate::rng::Xoshiro;
        let mut r = Xoshiro::seed(1);
        let g = r.vec_of(100_000, |r| r.gaussian());
        let l = r.vec_of(100_000, |r| r.laplace(1.0));
        assert!(excess_kurtosis(&g).abs() < 0.25);
        // Laplace has excess kurtosis 3.
        assert!((excess_kurtosis(&l) - 3.0).abs() < 0.8);
    }

    #[test]
    fn quantiles() {
        let xs: Vec<f32> = (0..101).map(|i| i as f32 - 50.0).collect();
        assert_eq!(abs_quantile(&xs, 1.0), 50.0);
        assert_eq!(abs_quantile(&xs, 0.0), 0.0);
    }
}
