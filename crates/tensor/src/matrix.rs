//! Row-major `f32` matrices with the group views used by block quantization.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix taking ownership of row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of all elements.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Applies `f` elementwise, returning a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Largest absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Appends the rows of `rows` below the existing rows — the growable
    /// store pattern (KV caches, accumulated decode outputs). Start from
    /// `Matrix::zeros(0, cols)` for an empty seed.
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn push_rows(&mut self, rows: &Matrix) {
        assert_eq!(self.cols, rows.cols, "appended rows have a different width");
        self.data.extend_from_slice(&rows.data);
        self.rows += rows.rows;
    }

    /// Drops all rows while keeping the allocation — the page-frame reuse
    /// pattern: a cleared matrix compares equal to `Matrix::zeros(0, cols)`
    /// (equality ignores capacity) but retains its buffer for the next fill.
    pub fn clear_rows(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// Iterates over contiguous row-wise groups of `k` elements.
    ///
    /// Each row is partitioned independently (groups never straddle a row
    /// boundary, matching how MX formats group along the reduction
    /// dimension). A final short group per row is yielded when `cols % k !=
    /// 0`.
    pub fn row_groups(&self, k: usize) -> impl Iterator<Item = &[f32]> {
        assert!(k > 0, "group size must be positive");
        self.data
            .chunks(self.cols)
            .flat_map(move |row| row.chunks(k))
    }

    /// Matrix product `self * rhs` (naive triple loop; exact reference).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for kk in 0..self.cols {
                let a = self[(i, kk)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(kk);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Multi-threaded matrix product using scoped threads. Produces results
    /// identical to [`Self::matmul`] (same per-row accumulation order).
    pub fn matmul_threaded(&self, rhs: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let cols = self.cols;
        let a = &self.data;
        par_row_chunks(&mut out.data, rhs.cols, threads, |row0, chunk| {
            for (local_i, orow) in chunk.chunks_mut(rhs.cols).enumerate() {
                let i = row0 + local_i;
                for kk in 0..cols {
                    let av = a[i * cols + kk];
                    if av == 0.0 {
                        continue;
                    }
                    let rrow = rhs.row(kk);
                    for (o, &bv) in orow.iter_mut().zip(rrow) {
                        *o += av * bv;
                    }
                }
            }
        });
        out
    }

    /// Elementwise sum with `rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

/// Splits a row-major output buffer of `ncols`-wide rows into contiguous
/// row chunks and runs `body(first_row, chunk)` for each on a scoped thread.
///
/// This is the shared parallel skeleton behind [`Matrix::matmul_threaded`]
/// and the packed quantized GEMM in `m2xfp::gemm`: each worker owns a
/// disjoint slice of the output, so no synchronization is needed and results
/// are identical to the sequential loop. Generic over the element type so
/// single-buffer byte-stream outputs can reuse the skeleton; the packed
/// quantizers' three-stream encode splits three buffers at once and keeps
/// its own scoped-thread loop (`m2xfp::format`).
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `ncols`, or if a worker
/// panics.
pub fn par_row_chunks<T, F>(out: &mut [T], ncols: usize, threads: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(ncols > 0, "ncols must be positive");
    assert_eq!(out.len() % ncols, 0, "buffer not a whole number of rows");
    let rows = out.len() / ncols;
    let threads = threads.max(1).min(rows.max(1));
    let chunk_rows = rows.div_ceil(threads);
    if threads <= 1 {
        body(0, out);
        return;
    }
    std::thread::scope(|s| {
        for (t, chunk) in out.chunks_mut(chunk_rows * ncols).enumerate() {
            let body = &body;
            s.spawn(move || body(t * chunk_rows, chunk));
        }
    });
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn threaded_matches_naive() {
        let a = Matrix::from_fn(17, 23, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(23, 9, |r, c| ((r * 5 + c * 11) % 17) as f32 - 8.0);
        let naive = a.matmul(&b);
        for threads in [1, 2, 4, 32] {
            assert_eq!(a.matmul_threaded(&b, threads), naive, "threads={threads}");
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], a[(1, 2)]);
    }

    #[test]
    fn row_groups_partition_rows() {
        let a = Matrix::from_fn(2, 7, |r, c| (r * 7 + c) as f32);
        let groups: Vec<&[f32]> = a.row_groups(4).collect();
        assert_eq!(groups.len(), 4); // per row: 4 + 3
        assert_eq!(groups[0], &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(groups[1], &[4.0, 5.0, 6.0]);
        assert_eq!(groups[2], &[7.0, 8.0, 9.0, 10.0]);
        assert_eq!(groups[3], &[11.0, 12.0, 13.0]);
    }

    #[test]
    fn add_sub_inverse() {
        let a = Matrix::from_fn(4, 4, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(4, 4, |r, c| (r * c) as f32 * 0.5);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn push_rows_grows_from_empty() {
        let mut m = Matrix::zeros(0, 3);
        m.push_rows(&Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        m.push_rows(&Matrix::from_vec(1, 3, vec![7.0, 8.0, 9.0]));
        assert_eq!((m.rows(), m.cols()), (3, 3));
        assert_eq!(m.row(2), &[7.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "different width")]
    fn push_rows_rejects_width_mismatch() {
        Matrix::zeros(0, 3).push_rows(&Matrix::zeros(1, 4));
    }

    #[test]
    fn clear_rows_equals_fresh_empty() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        m.clear_rows();
        assert_eq!(m, Matrix::zeros(0, 3));
        m.push_rows(&Matrix::from_vec(1, 3, vec![7.0, 8.0, 9.0]));
        assert_eq!(m.row(0), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let a = Matrix::from_vec(1, 4, vec![1.0, -7.5, 3.0, 2.0]);
        assert_eq!(a.max_abs(), 7.5);
        assert_eq!(Matrix::zeros(2, 2).max_abs(), 0.0);
    }
}
