//! Deterministic random sources and heavy-tailed samplers.
//!
//! All workloads in this reproduction are synthesized from seeded RNGs so
//! every table and figure is reproducible bit-for-bit. The distributions
//! here are the building blocks of the per-model weight/activation profiles
//! in `m2x-nn`: LLM tensors are well modeled by a Gaussian body plus
//! heavy-tailed outliers (Laplace / Student-t / lognormal-magnitude tails).

/// A seeded deterministic xoshiro256++ generator (Blackman & Vigna), state
/// initialized from the 64-bit seed by SplitMix64 — the reference
/// construction, implemented here directly so the workspace stays
/// dependency-free.
#[derive(Debug, Clone)]
pub struct Xoshiro {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; used to give every tensor its
    /// own stream so generation order does not matter.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Xoshiro::seed(s)
    }

    /// Uniform in `[0, 1)` with 24 bits of resolution (exact in f32).
    pub fn uniform(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal via Box–Muller.
    pub fn gaussian(&mut self) -> f32 {
        // Avoid log(0).
        let u1 = (1.0 - self.uniform()).max(f32::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.gaussian()
    }

    /// Laplace(0, b) via inverse CDF — a standard model of LLM weights.
    pub fn laplace(&mut self, b: f32) -> f32 {
        let u = self.uniform() - 0.5;
        -b * u.signum() * (1.0 - 2.0 * u.abs()).max(f32::MIN_POSITIVE).ln()
    }

    /// Student-t with `nu` degrees of freedom — heavy tails for activation
    /// outliers. Implemented as normal / sqrt(chi²/nu) with chi² built from
    /// `nu` squared normals (exact for integer nu, which is all we use).
    pub fn student_t(&mut self, nu: u32) -> f32 {
        assert!(nu >= 1, "degrees of freedom must be >= 1");
        let z = self.gaussian();
        let mut chi2 = 0.0f32;
        for _ in 0..nu {
            let g = self.gaussian();
            chi2 += g * g;
        }
        z / (chi2 / nu as f32).sqrt().max(1e-20)
    }

    /// Lognormal magnitude: `exp(normal(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f32, sigma: f32) -> f32 {
        self.normal(mu, sigma).exp()
    }

    /// Returns true with probability `p`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Fills a vector with i.i.d. samples from `f`.
    pub fn vec_of(&mut self, n: usize, mut f: impl FnMut(&mut Self) -> f32) -> Vec<f32> {
        (0..n).map(|_| f(self)).collect()
    }

    /// A random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.below(i + 1);
            p.swap(i, j);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro::seed(42);
        let mut b = Xoshiro::seed(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro::seed(1);
        let mut b = Xoshiro::seed(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Xoshiro::seed(7);
        let n = 200_000;
        let xs = r.vec_of(n, |r| r.gaussian());
        let mean: f32 = xs.iter().sum::<f32>() / n as f32;
        let var: f32 = xs.iter().map(|x| x * x).sum::<f32>() / n as f32 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn laplace_variance_is_2b2() {
        let mut r = Xoshiro::seed(11);
        let b = 0.7f32;
        let n = 200_000;
        let xs = r.vec_of(n, |r| r.laplace(b));
        let var: f32 = xs.iter().map(|x| x * x).sum::<f32>() / n as f32;
        assert!((var - 2.0 * b * b).abs() < 0.05, "var {var}");
    }

    #[test]
    fn student_t_has_heavier_tails_than_gaussian() {
        let mut r = Xoshiro::seed(13);
        let n = 100_000;
        let t: usize = (0..n).filter(|_| r.student_t(4).abs() > 4.0).count();
        let g: usize = (0..n).filter(|_| r.gaussian().abs() > 4.0).count();
        assert!(t > g * 5, "t tail {t}, gaussian tail {g}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = Xoshiro::seed(3);
        let p = r.permutation(100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn fork_streams_are_independent_of_order() {
        let mut root1 = Xoshiro::seed(5);
        let mut a1 = root1.fork(1);
        let mut root2 = Xoshiro::seed(5);
        let mut a2 = root2.fork(1);
        assert_eq!(a1.uniform().to_bits(), a2.uniform().to_bits());
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Xoshiro::seed(17);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f32 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
