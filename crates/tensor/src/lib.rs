//! # m2x-tensor
//!
//! Minimal dense math substrate for the M2XFP reproduction:
//!
//! * [`matrix`] — row-major `f32` matrices with group/subgroup views, naive
//!   and multi-threaded GEMM.
//! * [`rng`] — deterministic random sources and the heavy-tailed
//!   distributions (Gaussian, Laplace, Student-t, lognormal) used to
//!   synthesize LLM-like weights and activations.
//! * [`stats`] — error metrics (MSE, NMSE, SQNR, cosine similarity) and
//!   distribution shape statistics (kurtosis, quantiles).
//!
//! ```
//! use m2x_tensor::matrix::Matrix;
//!
//! let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
//! let b = Matrix::identity(3);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

pub mod linalg;
pub mod matrix;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use rng::Xoshiro;
