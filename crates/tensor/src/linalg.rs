//! Small dense linear-algebra kernels used by the algorithm-scheme
//! baselines (GPTQ needs a Cholesky-based inverse Hessian; QuaRot/DuQuant
//! need orthonormal transforms, built in `m2x-baselines`).
//!
//! All routines are f64 and operate on symmetric positive-definite (SPD)
//! matrices stored row-major.

use crate::matrix::Matrix;

/// Error from a failed factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotSpdError {
    /// Pivot index where positive-definiteness failed.
    pub pivot: usize,
}

impl std::fmt::Display for NotSpdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotSpdError {}

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ` (f64, row-major,
/// `n × n`).
///
/// # Errors
///
/// Returns [`NotSpdError`] when a pivot is non-positive.
pub fn cholesky(a: &[f64], n: usize) -> Result<Vec<f64>, NotSpdError> {
    assert_eq!(a.len(), n * n);
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(NotSpdError { pivot: i });
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(l)
}

/// Solves `L·y = b` for lower-triangular `L` (forward substitution).
pub fn solve_lower(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * y[k];
        }
        y[i] = s / l[i * n + i];
    }
    y
}

/// Solves `Lᵀ·x = y` for lower-triangular `L` (backward substitution).
pub fn solve_lower_t(l: &[f64], n: usize, y: &[f64]) -> Vec<f64> {
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in i + 1..n {
            s -= l[k * n + i] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
    x
}

/// Inverse of an SPD matrix via Cholesky (column-by-column solves).
///
/// # Errors
///
/// Returns [`NotSpdError`] when the factorization fails.
pub fn inverse_spd(a: &[f64], n: usize) -> Result<Vec<f64>, NotSpdError> {
    let l = cholesky(a, n)?;
    let mut inv = vec![0.0f64; n * n];
    let mut e = vec![0.0f64; n];
    for c in 0..n {
        e.fill(0.0);
        e[c] = 1.0;
        let y = solve_lower(&l, n, &e);
        let x = solve_lower_t(&l, n, &y);
        for r in 0..n {
            inv[r * n + c] = x[r];
        }
    }
    Ok(inv)
}

/// Upper-triangular Cholesky factor `U` with `A = Uᵀ·U` — the form GPTQ
/// uses for the inverse Hessian.
///
/// # Errors
///
/// Returns [`NotSpdError`] when the factorization fails.
pub fn cholesky_upper(a: &[f64], n: usize) -> Result<Vec<f64>, NotSpdError> {
    let l = cholesky(a, n)?;
    let mut u = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            u[j * n + i] = l[i * n + j];
        }
    }
    Ok(u)
}

/// Gram matrix `Xᵀ·X` of an `f32` matrix, accumulated in f64, with a
/// relative ridge `λ·mean(diag)` added to the diagonal (GPTQ's percdamp).
pub fn gram_with_damping(x: &Matrix, damp: f64) -> Vec<f64> {
    let k = x.cols();
    let mut h = vec![0.0f64; k * k];
    for r in 0..x.rows() {
        let row = x.row(r);
        for i in 0..k {
            let xi = row[i] as f64;
            if xi == 0.0 {
                continue;
            }
            for j in i..k {
                h[i * k + j] += xi * row[j] as f64;
            }
        }
    }
    for i in 0..k {
        for j in 0..i {
            h[i * k + j] = h[j * k + i];
        }
    }
    let mean_diag: f64 = (0..k).map(|i| h[i * k + i]).sum::<f64>() / k as f64;
    let ridge = damp * mean_diag.max(1e-12);
    for i in 0..k {
        h[i * k + i] += ridge;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> Vec<f64> {
        // A = B·Bᵀ + I for a deterministic B.
        let b: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.731).sin() + 0.2).collect();
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..n {
                    s += b[i * n + k] * b[j * n + k];
                }
                a[i * n + j] = s;
            }
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let n = 8;
        let a = spd(n);
        let l = cholesky(&a, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += l[i * n + k] * l[j * n + k];
                }
                assert!((s - a[i * n + j]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_roundtrip() {
        let n = 6;
        let a = spd(n);
        let l = cholesky(&a, n).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
        let y = solve_lower(&l, n, &b);
        let x = solve_lower_t(&l, n, &y);
        // Check A·x = b.
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                s += a[i * n + j] * x[j];
            }
            assert!((s - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_is_inverse() {
        let n = 7;
        let a = spd(n);
        let inv = inverse_spd(&a, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a[i * n + k] * inv[k * n + j];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((s - want).abs() < 1e-8, "({i},{j}) got {s}");
            }
        }
    }

    #[test]
    fn upper_cholesky_reconstructs() {
        let n = 5;
        let a = spd(n);
        let u = cholesky_upper(&a, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += u[k * n + i] * u[k * n + j];
                }
                assert!((s - a[i * n + j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn non_spd_rejected() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(cholesky(&a, 2).is_err());
    }

    #[test]
    fn gram_is_symmetric_and_damped() {
        let x = Matrix::from_fn(10, 4, |r, c| ((r * 4 + c) as f32 * 0.37).sin());
        let h = gram_with_damping(&x, 0.01);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(h[i * 4 + j], h[j * 4 + i]);
            }
        }
        // Damping makes it SPD.
        assert!(cholesky(&h, 4).is_ok());
    }
}
