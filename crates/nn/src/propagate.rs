//! W4A4 error measurement through the transformer's linear stack.
//!
//! For each GEMM kind of a model we synthesize the operands from the
//! model's profile, run the quantized GEMM (`Q_a(X) · Q_w(Wᵀ)ᵀ`) against
//! the f32 reference, and aggregate the relative output error weighted by
//! each GEMM's share of the model's MACs. This measured error is the input
//! to every accuracy/perplexity proxy in [`crate::metrics`] — the proxies
//! never see the format, only its measured error.

use crate::layers::{linear_gemms, weight_kind};
use crate::profile::ModelProfile;
use crate::synth::{activation_matrix, weight_matrix};
use m2x_tensor::stats::nmse;
use m2x_tensor::Matrix;
use m2xfp::backend::ExecBackend;
use m2xfp::format::PackedWeightTensor;
use m2xfp::{M2xfpConfig, TensorQuantizer};

/// Evaluation size caps (full model dimensions are sub-sampled; block
/// quantization error statistics are dimension-independent, see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Token rows per GEMM.
    pub tokens: usize,
    /// Cap on the sampled reduction dimension.
    pub max_k: usize,
    /// Cap on the sampled output width.
    pub max_n: usize,
    /// Transformer layers sampled per model.
    pub layer_samples: usize,
    /// Threads for the f32 reference GEMMs.
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            tokens: 48,
            max_k: 768,
            max_n: 384,
            layer_samples: 2,
            threads: 8,
        }
    }
}

impl EvalConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        EvalConfig {
            tokens: 16,
            max_k: 128,
            max_n: 64,
            layer_samples: 1,
            threads: 2,
        }
    }
}

/// Measured W4A4 error statistics of one (model, format) pair.
#[derive(Debug, Clone)]
pub struct W4a4Stats {
    /// Format display name.
    pub format: String,
    /// Model display name.
    pub model: String,
    /// Per-GEMM-kind output NMSE (averaged over sampled layers).
    pub per_gemm: Vec<(String, f64)>,
    /// MAC-weighted mean output NMSE.
    pub mean_nmse: f64,
}

/// Pre-unification name of [`W4a4Stats`], kept so existing call sites keep
/// compiling (it is a measurement record, not an error type — Rust errors
/// now all live in [`m2xfp::Error`]).
pub type W4a4Error = W4a4Stats;

impl W4a4Stats {
    /// Relative RMS output error (√NMSE) — the proxies' noise magnitude.
    pub fn nrmse(&self) -> f64 {
        self.mean_nmse.sqrt()
    }
}

/// Evaluates a format through the [`TensorQuantizer`] interface.
pub fn evaluate(
    profile: &ModelProfile,
    quant: &dyn TensorQuantizer,
    cfg: &EvalConfig,
) -> W4a4Stats {
    evaluate_with(
        profile,
        &quant.name(),
        cfg,
        |w, _layer| quant.quantize_weights(w),
        |x| quant.quantize_activations(x),
    )
}

/// Evaluates the M2XFP format through an execution backend: every quantized
/// GEMM runs the backend's actual engine (`ExecBackend::forward` — online
/// activation encode + integer PE kernel against prepared weights) instead
/// of the fake-quantize-then-f32-matmul route of [`evaluate`]. This is the
/// measurement the engine really ships; all backends report bit-identical
/// numbers.
pub fn evaluate_backend(
    profile: &ModelProfile,
    backend: &dyn ExecBackend,
    qcfg: M2xfpConfig,
    cfg: &EvalConfig,
) -> W4a4Stats {
    // K is aligned down to the group size so the engine forward keeps the
    // hardware layout contract (`K % group_size == 0`).
    evaluate_gemms(
        profile,
        &format!("M2XFP/{}", backend.name()),
        cfg,
        qcfg.group_size,
        |x, w_t, _layer| {
            let prepared = backend.prepare(PackedWeightTensor::quantize_parallel(w_t, qcfg));
            backend
                .forward(x, &prepared)
                // m2x-lint: allow(panic) synthesized shapes are group-aligned by construction; the infallible closure signature is fixed by the harness
                .expect("aligned dims by construction")
        },
    )
}

/// Evaluates with explicit weight/activation transforms — the hook used by
/// calibration-dependent schemes (MR-GPTQ) and ablations. The weight hook
/// receives the sampled layer index so calibration data can match the
/// layer's activation statistics.
pub fn evaluate_with(
    profile: &ModelProfile,
    format_name: &str,
    cfg: &EvalConfig,
    quantize_weights: impl Fn(&Matrix, usize) -> Matrix,
    quantize_activations: impl Fn(&Matrix) -> Matrix,
) -> W4a4Stats {
    evaluate_gemms(profile, format_name, cfg, 1, |x, w_t, layer_idx| {
        let xq = quantize_activations(x);
        let wq = quantize_weights(w_t, layer_idx);
        xq.matmul_threaded(&wq.transpose(), cfg.threads)
    })
}

/// The shared measurement scaffold: enumerates the model's linear GEMMs,
/// synthesizes operands per sampled layer, runs `quantized_gemm(x, w_t,
/// layer_idx)` against the f32 reference and MAC-weights the per-kind NMSE.
/// `k_align` rounds the sampled reduction dimension down to a multiple
/// (1 = no alignment; the engine route passes the group size).
fn evaluate_gemms(
    profile: &ModelProfile,
    format_name: &str,
    cfg: &EvalConfig,
    k_align: usize,
    quantized_gemm: impl Fn(&Matrix, &Matrix, usize) -> Matrix,
) -> W4a4Stats {
    let shapes = linear_gemms(profile, cfg.tokens);
    let total_macs: f64 = shapes.iter().map(|g| g.macs() as f64).sum();

    let mut per_gemm = Vec::with_capacity(shapes.len());
    let mut weighted = 0.0f64;
    for shape in &shapes {
        // m2x-lint: allow(panic) shapes come from the static profile table, every entry is a linear gemm
        let kind = weight_kind(&shape.name).expect("linear gemm");
        let k = (shape.k.min(cfg.max_k) / k_align).max(1) * k_align;
        let n = shape.n.min(cfg.max_n);
        let mut acc = 0.0f64;
        for li in 0..cfg.layer_samples {
            let layer_idx = li * (profile.layers / cfg.layer_samples.max(1)).max(1);
            let x = activation_matrix(profile, layer_idx, cfg.tokens, k);
            let w_t = weight_matrix(profile, kind, layer_idx, n, k);
            let y_ref = x.matmul_threaded(&w_t.transpose(), cfg.threads);
            let y_q = quantized_gemm(&x, &w_t, layer_idx);
            acc += nmse(y_ref.as_slice(), y_q.as_slice());
        }
        let e = acc / cfg.layer_samples as f64;
        weighted += e * shape.macs() as f64 / total_macs;
        per_gemm.push((shape.name.clone(), e));
    }

    W4a4Stats {
        format: format_name.to_string(),
        model: profile.name.to_string(),
        per_gemm,
        mean_nmse: weighted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_baselines::MxQuantizer;
    use m2xfp::quantizer::{Fp16Reference, M2xfpQuantizer};

    #[test]
    fn fp16_reference_error_is_negligible() {
        let p = ModelProfile::llama2_7b();
        let e = evaluate(&p, &Fp16Reference, &EvalConfig::tiny());
        assert!(e.mean_nmse < 1e-5, "{}", e.mean_nmse);
    }

    #[test]
    fn m2xfp_beats_mxfp4_end_to_end() {
        let p = ModelProfile::llama3_8b();
        let cfg = EvalConfig::tiny();
        let e_m2 = evaluate(&p, &M2xfpQuantizer::default(), &cfg);
        let e_mx = evaluate(&p, &MxQuantizer::mxfp4(), &cfg);
        assert!(
            e_m2.mean_nmse < e_mx.mean_nmse,
            "m2xfp {} vs mxfp4 {}",
            e_m2.mean_nmse,
            e_mx.mean_nmse
        );
    }

    #[test]
    fn per_gemm_covers_all_linear_layers() {
        let p = ModelProfile::mistral_7b();
        let e = evaluate(&p, &MxQuantizer::mxfp4(), &EvalConfig::tiny());
        assert_eq!(e.per_gemm.len(), 7);
        assert!(e.per_gemm.iter().all(|(_, v)| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let p = ModelProfile::falcon_7b();
        let cfg = EvalConfig::tiny();
        let a = evaluate(&p, &MxQuantizer::mxfp4(), &cfg);
        let b = evaluate(&p, &MxQuantizer::mxfp4(), &cfg);
        assert_eq!(a.mean_nmse, b.mean_nmse);
    }

    #[test]
    fn backend_evaluation_identical_across_backends() {
        use m2xfp::backend::BackendKind;
        let p = ModelProfile::llama3_8b();
        let cfg = EvalConfig::tiny();
        let qcfg = M2xfpConfig::default();
        let runs: Vec<W4a4Stats> = BackendKind::ALL
            .iter()
            .map(|k| evaluate_backend(&p, k.backend(), qcfg, &cfg))
            .collect();
        assert!(runs[0].mean_nmse > 0.0 && runs[0].mean_nmse < 0.05);
        for r in &runs[1..] {
            assert_eq!(
                runs[0].mean_nmse.to_bits(),
                r.mean_nmse.to_bits(),
                "{} vs {}",
                runs[0].format,
                r.format
            );
        }
        assert_eq!(runs[0].format, "M2XFP/packed");
    }

    #[test]
    fn nrmse_is_sqrt_of_nmse() {
        let e = W4a4Stats {
            format: "t".into(),
            model: "m".into(),
            per_gemm: vec![],
            mean_nmse: 0.04,
        };
        assert!((e.nrmse() - 0.2).abs() < 1e-12);
    }
}
