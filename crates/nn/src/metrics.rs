//! Perplexity and task-accuracy proxies.
//!
//! Substitution model (DESIGN.md §1): downstream quality under quantization
//! is a monotone function of the relative output error of the quantized
//! linear stack. We anchor each model's curve with exactly two published
//! constants — the FP16 row and the MXFP4 row of the paper's tables — and
//! predict every other format from its *measured* error:
//!
//! * Perplexity: `ppl(e) = ppl_fp16 · exp(k·e)` with `k` solved from the
//!   MXFP4 anchor (`e` = measured NRMSE). Monotone, exact at both anchors.
//! * Accuracy: a latent-margin model. A task with FP16 accuracy `a` above
//!   chance `c` has margin `μ = Φ⁻¹((a−c)/(100−c))`; quantization noise of
//!   strength `σ = β·e` flips decisions, giving
//!   `a(e) = c + (100−c)·Φ(μ/√(1+σ²))`. `β` is solved per model from the
//!   MXFP4 average-accuracy anchor.
//!
//! MXFP4 rows therefore reproduce the paper by construction; every other
//! row is a prediction from measured error — orderings and gaps are
//! genuine outputs of the format implementations.

/// Standard normal CDF (Abramowitz–Stegun 7.1.26 erf, |ε| < 1.5e-7).
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Inverse normal CDF by bisection (robust; p clipped to (1e-9, 1-1e-9)).
pub fn phi_inv(p: f64) -> f64 {
    let p = p.clamp(1e-9, 1.0 - 1e-9);
    let (mut lo, mut hi) = (-8.0f64, 8.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if phi(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Compounds a single-layer relative error through `layers` transformer
/// blocks under the independent multiplicative-noise model:
/// `e_total = √((1 + e²)^L − 1)`.
///
/// For small per-layer error this is ≈ √L·e (graceful, linear regime); for
/// large error it explodes — reproducing the threshold collapse real LLMs
/// show under formats like SMX4 (Tbl. 2), which a single-layer error
/// measurement alone cannot capture.
pub fn compound_error(nrmse_layer: f64, layers: usize) -> f64 {
    let v = (1.0 + nrmse_layer * nrmse_layer).powi(layers as i32) - 1.0;
    v.max(0.0).sqrt()
}

/// Published anchors for one model (constants from the paper's tables).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PplAnchor {
    /// FP16 Wikitext perplexity (paper Tbl. 3 row 1).
    pub fp16: f64,
    /// MXFP4 Wikitext perplexity (paper Tbl. 3 row 2) — calibration point.
    pub mxfp4: f64,
}

/// Tbl. 3 anchors by model name.
pub fn ppl_anchor(model: &str) -> Option<PplAnchor> {
    let a = match model {
        "LLaMA2-7B" => PplAnchor {
            fp16: 5.47,
            mxfp4: 7.15,
        },
        "LLaMA3-8B" => PplAnchor {
            fp16: 6.14,
            mxfp4: 8.30,
        },
        "LLaMA3-70B" => PplAnchor {
            fp16: 2.85,
            mxfp4: 4.84,
        },
        "OPT-6.7B" => PplAnchor {
            fp16: 10.86,
            mxfp4: 19.21,
        },
        "Mistral-7B" => PplAnchor {
            fp16: 5.32,
            mxfp4: 6.56,
        },
        "Falcon-7B" => PplAnchor {
            fp16: 6.59,
            mxfp4: 7.59,
        },
        _ => return None,
    };
    Some(a)
}

/// Perplexity proxy: exponential-in-error curve through the two anchors.
///
/// `nrmse_mxfp4` is the measured MXFP4 error of the same model under the
/// same evaluation configuration; `nrmse` is the format under test.
pub fn ppl_proxy(anchor: PplAnchor, nrmse_mxfp4: f64, nrmse: f64) -> f64 {
    if nrmse_mxfp4 <= 0.0 {
        return anchor.fp16;
    }
    let k = (anchor.mxfp4 / anchor.fp16).ln() / nrmse_mxfp4;
    anchor.fp16 * (k * nrmse).exp()
}

/// One zero-shot task: paper name, chance level (%), FP16 accuracy (%).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskAnchor {
    /// Task name as in Tbl. 2 / Tbl. 4.
    pub name: &'static str,
    /// Random-guess accuracy.
    pub chance: f64,
    /// Published FP16 accuracy.
    pub fp16: f64,
}

/// The Tbl. 2 FP16 rows (Arc-e, Arc-c, HellaSwag, PiQA, WinoGrande, BoolQ).
pub fn zero_shot_anchors(model: &str) -> Option<(Vec<TaskAnchor>, f64)> {
    // (tasks, mxfp4_average) — the average anchors the β calibration.
    let rows: (&[f64; 6], f64) = match model {
        "LLaMA2-7B" => (&[74.58, 46.25, 75.99, 79.11, 69.06, 77.71], 65.32),
        "LLaMA3-8B" => (&[77.49, 53.33, 79.15, 80.85, 72.53, 81.28], 68.26),
        "Mistral-7B" => (&[78.24, 52.13, 80.46, 82.26, 73.80, 82.14], 69.68),
        _ => return None,
    };
    let names = ["Arc-e", "Arc-c", "Hella.", "PiQA", "Wino.", "BoolQ"];
    let chance = [25.0, 25.0, 25.0, 50.0, 50.0, 50.0];
    let tasks = names
        .iter()
        .zip(chance)
        .zip(rows.0)
        .map(|((name, chance), &fp16)| TaskAnchor { name, chance, fp16 })
        .collect();
    Some((tasks, rows.1))
}

/// The Tbl. 4 reasoning rows (AIME-90, MATH-500, GSM8K, GPQA,
/// LiveCodeBench) for the DeepSeek-R1-Distill-Qwen models.
pub fn reasoning_anchors(model: &str) -> Option<(Vec<TaskAnchor>, f64)> {
    let rows: (&[f64; 5], f64) = match model {
        "DeepSeek-R1-Distill-Qwen-1.5B" => (&[21.11, 85.40, 84.76, 36.36, 17.54], 36.91),
        "DeepSeek-R1-Distill-Qwen-7B" => (&[45.56, 93.80, 90.83, 50.51, 35.82], 56.00),
        _ => return None,
    };
    let names = ["AIME-90", "MATH-500", "GSM8K", "GPQA", "LiveCodeBench"];
    let chance = [0.0, 0.0, 0.0, 25.0, 0.0];
    let tasks = names
        .iter()
        .zip(chance)
        .zip(rows.0)
        .map(|((name, chance), &fp16)| TaskAnchor { name, chance, fp16 })
        .collect();
    Some((tasks, rows.1))
}

/// Effective number of competitors for a task: `100/chance` choices for
/// multiple-choice tasks, a large field for open-ended generation (AIME,
/// GSM8K, code), whose accuracy must collapse toward ~0 under heavy noise.
fn k_choices(chance: f64) -> usize {
    if chance < 1.0 {
        100
    } else {
        (100.0 / chance).round().max(2.0) as usize
    }
}

/// P(win) of a K-competitor latent race: the correct choice scores
/// `N(mu_eff, 1)`, each of the K−1 competitors `N(0, 1)`;
/// `mu_eff = μ/√(1+σ²)` shrinks as quantization noise grows, so accuracy
/// degrades monotonically to chance `1/K`.
fn race_probability(mu_eff: f64, k: usize) -> f64 {
    // ∫ φ(t) Φ(t + mu_eff)^{K-1} dt, trapezoid on [-8, 8].
    let n = 400;
    let (lo, hi) = (-8.0f64, 8.0f64);
    let h = (hi - lo) / n as f64;
    let mut sum = 0.0;
    for i in 0..=n {
        let t = lo + h * i as f64;
        let pdf = (-0.5 * t * t).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let v = pdf * phi(t + mu_eff).powi(k as i32 - 1);
        sum += if i == 0 || i == n { 0.5 * v } else { v };
    }
    sum * h
}

/// Solves for the latent margin μ reproducing the FP16 accuracy at σ = 0.
fn task_mu(task: TaskAnchor) -> (f64, usize) {
    let k = k_choices(task.chance);
    let target = (task.fp16 / 100.0).clamp(1.0 / k as f64 + 1e-6, 1.0 - 1e-6);
    let (mut lo, mut hi) = (-10.0f64, 40.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if race_probability(mid, k) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (0.5 * (lo + hi), k)
}

/// Accuracy of one task under margin noise `sigma` (K-competitor race
/// model; degrades from the FP16 anchor toward chance).
pub fn task_accuracy(task: TaskAnchor, sigma: f64) -> f64 {
    let (mu, k) = task_mu(task);
    100.0 * race_probability(mu / (1.0 + sigma * sigma).sqrt(), k)
}

/// Calibrates the noise gain β so that MXFP4's measured error reproduces
/// the published MXFP4 average accuracy, then returns per-task accuracies
/// for a format with measured error `nrmse`.
pub fn accuracy_proxy(
    tasks: &[TaskAnchor],
    mxfp4_avg: f64,
    nrmse_mxfp4: f64,
    nrmse: f64,
) -> Vec<f64> {
    let cal: Vec<(f64, usize)> = tasks.iter().map(|&t| task_mu(t)).collect();
    let beta = calibrate_beta_cached(&cal, mxfp4_avg, nrmse_mxfp4);
    cal.iter()
        .map(|&(mu, k)| {
            let sigma = beta * nrmse;
            100.0 * race_probability(mu / (1.0 + sigma * sigma).sqrt(), k)
        })
        .collect()
}

/// Solves for β by bisection: mean task accuracy at σ = β·e₀ equals the
/// anchor average.
pub fn calibrate_beta(tasks: &[TaskAnchor], target_avg: f64, nrmse_mxfp4: f64) -> f64 {
    let cal: Vec<(f64, usize)> = tasks.iter().map(|&t| task_mu(t)).collect();
    calibrate_beta_cached(&cal, target_avg, nrmse_mxfp4)
}

fn calibrate_beta_cached(cal: &[(f64, usize)], target_avg: f64, nrmse_mxfp4: f64) -> f64 {
    if nrmse_mxfp4 <= 0.0 {
        return 0.0;
    }
    let avg_at = |beta: f64| {
        cal.iter()
            .map(|&(mu, k)| {
                let sigma = beta * nrmse_mxfp4;
                100.0 * race_probability(mu / (1.0 + sigma * sigma).sqrt(), k)
            })
            .sum::<f64>()
            / cal.len() as f64
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while avg_at(hi) > target_avg && hi < 1e6 {
        hi *= 2.0;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if avg_at(mid) > target_avg {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compound_error_regimes() {
        // Small error: ≈ √L · e (linear regime).
        let e = 0.01;
        let c = compound_error(e, 32);
        assert!((c - (32f64).sqrt() * e).abs() / c < 0.02, "got {c}");
        // Large error explodes far beyond linear (threshold collapse).
        let big = compound_error(0.5, 32);
        assert!(big > 10.0 * (32f64).sqrt() * 0.5, "got {big}");
        // Monotone in both arguments; zero maps to zero.
        assert_eq!(compound_error(0.0, 32), 0.0);
        assert!(compound_error(0.1, 32) < compound_error(0.2, 32));
        assert!(compound_error(0.1, 32) < compound_error(0.1, 80));
    }

    #[test]
    fn phi_matches_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
        assert!((phi(1.0) - 0.841_344_7).abs() < 1e-5);
        assert!((phi(-1.96) - 0.025).abs() < 3e-4);
    }

    #[test]
    fn phi_inv_roundtrip() {
        for p in [0.01, 0.2, 0.5, 0.8, 0.975] {
            assert!((phi(phi_inv(p)) - p).abs() < 1e-7, "{p}");
        }
    }

    #[test]
    fn ppl_proxy_hits_both_anchors() {
        let a = ppl_anchor("LLaMA2-7B").unwrap();
        let e0 = 0.07;
        assert!((ppl_proxy(a, e0, 0.0) - a.fp16).abs() < 1e-9);
        assert!((ppl_proxy(a, e0, e0) - a.mxfp4).abs() < 1e-9);
        // Monotone in error.
        assert!(ppl_proxy(a, e0, 0.02) < ppl_proxy(a, e0, 0.05));
    }

    #[test]
    fn task_accuracy_degrades_to_chance() {
        let t = TaskAnchor {
            name: "t",
            chance: 25.0,
            fp16: 75.0,
        };
        assert!((task_accuracy(t, 0.0) - 75.0).abs() < 0.05);
        let heavy = task_accuracy(t, 100.0);
        assert!((heavy - 25.0).abs() < 1.0, "got {heavy}");
        // Monotone decreasing in noise.
        assert!(task_accuracy(t, 0.5) > task_accuracy(t, 1.0));
    }

    #[test]
    fn beta_calibration_reproduces_anchor() {
        let (tasks, mx_avg) = zero_shot_anchors("LLaMA2-7B").unwrap();
        let e0 = 0.08;
        let beta = calibrate_beta(&tasks, mx_avg, e0);
        let acc = accuracy_proxy(&tasks, mx_avg, e0, e0);
        let avg = acc.iter().sum::<f64>() / acc.len() as f64;
        assert!((avg - mx_avg).abs() < 0.01, "avg {avg} vs {mx_avg}");
        assert!(beta > 0.0);
    }

    #[test]
    fn smaller_error_gives_higher_accuracy() {
        let (tasks, mx_avg) = zero_shot_anchors("LLaMA3-8B").unwrap();
        let e0 = 0.08;
        let worse = accuracy_proxy(&tasks, mx_avg, e0, 0.10);
        let better = accuracy_proxy(&tasks, mx_avg, e0, 0.03);
        for (w, b) in worse.iter().zip(&better) {
            assert!(b > w);
        }
    }

    #[test]
    fn reasoning_tasks_crash_harder() {
        // AIME (low FP16 accuracy, zero chance) must lose a larger fraction
        // than GSM8K under the same noise — the paper's Tbl. 4 pattern.
        let (tasks, mx_avg) = reasoning_anchors("DeepSeek-R1-Distill-Qwen-1.5B").unwrap();
        let e0 = 0.08;
        let acc = accuracy_proxy(&tasks, mx_avg, e0, e0);
        let aime_drop = (21.11 - acc[0]) / 21.11;
        let gsm_drop = (84.76 - acc[2]) / 84.76;
        assert!(
            aime_drop > gsm_drop,
            "aime {:.1}% vs gsm {:.1}%",
            aime_drop * 100.0,
            gsm_drop * 100.0
        );
    }

    #[test]
    fn anchors_exist_for_expected_models() {
        for m in [
            "LLaMA2-7B",
            "LLaMA3-8B",
            "LLaMA3-70B",
            "OPT-6.7B",
            "Mistral-7B",
            "Falcon-7B",
        ] {
            assert!(ppl_anchor(m).is_some(), "{m}");
        }
        assert!(ppl_anchor("GPT-5").is_none());
        assert!(zero_shot_anchors("LLaMA2-7B").is_some());
        assert!(reasoning_anchors("DeepSeek-R1-Distill-Qwen-7B").is_some());
    }
}
