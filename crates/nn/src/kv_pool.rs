//! Paged KV-cache pool with copy-on-write prefix sharing.
//!
//! Every serving session used to own monolithic per-head `Vec` growth
//! ([`SessionState`](crate::SessionState) held one `KvCache` per layer).
//! Under churn that fragments the allocator and stores identical prompt
//! prefixes once per request. This module replaces that with a shared
//! [`KvPagePool`]:
//!
//! * **Pages** — fixed-size frames of [`PageEntry`] blocks, one entry per
//!   `(layer, kv_head)`, each holding the packed three-stream KV block
//!   (nibble FP4 codes | E8M0 scales | 2-bit Sg-EM meta) plus its decoded
//!   working state (the K execution plane inside [`PreparedWeights`], the
//!   dequantized V rows). A page spans [`PoolGeometry::page_tokens`]
//!   tokens, validated to be a multiple of the quantization group size so
//!   a page never splits a group — which is what makes per-page appends
//!   and per-page attention bit-identical to the monolithic layout.
//! * **Free list** — released frames keep their stream allocations
//!   ([`clear_rows`](PackedWeightTensor::clear_rows) drops rows, not
//!   capacity) and are recycled O(1) on the next
//!   [`acquire`](KvPagePool::acquire). A cleared frame compares equal to a
//!   freshly quantized empty one, so a reused page leaves no trace — the
//!   unit tests pin recycled-page appends bit-identical to fresh-pool
//!   appends.
//! * **Copy-on-write sharing** — page handles are `Arc`s. Appending
//!   through a handle whose page is shared (a cloned session, or a frozen
//!   prefix page held by the index) clones the page first
//!   ([`PageHandle::make_mut`]), extending the Arc-internal CoW rule
//!   [`PreparedWeights::append_quantized`] already uses to the cache
//!   itself. A shared page is never mutated in place.
//! * **Prefix reuse** — after a prefill completes, its full pages can be
//!   frozen and published ([`KvPagePool::register_prefix`]) under a chain
//!   hash of the prompt rows they cover. A later request with the same
//!   prompt prefix adopts those pages ([`KvPagePool::lookup_prefix`] →
//!   [`PagedKv::adopt_prefix`]) instead of re-quantizing them; the stored
//!   source rows are verified bitwise before adoption, so a hash collision
//!   can never smuggle in foreign KV state.
//!
//! Accounting is honest about both representations:
//! [`PagedKv::packed_bytes`] counts the canonical 4.5-bit streams (what
//! the serving admission budget gates on) and [`PagedKv::decoded_bytes`]
//! counts the decoded K planes + dequantized-V working state on top.

use m2x_tensor::Matrix;
use m2xfp::backend::{BackendKind, PreparedWeights};
use m2xfp::format::PackedWeightTensor;
use m2xfp::{Error, M2xfpConfig};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, Weak};

/// Released frames kept for recycling; beyond this, frames are dropped so
/// a burst of churn cannot pin unbounded capacity.
const FREE_LIST_CAP: usize = 256;

/// Frozen prefix pages the pool itself keeps alive (FIFO) so a prefix
/// outlives the request that produced it; older entries are evicted.
const RETAIN_CAP: usize = 64;

/// Seed of the prompt-row chain hash (two mixed 64-bit streams).
const CHAIN_SEED: u128 = (0x9e37_79b9_7f4a_7c15_u128 << 64) | 0xcbf2_9ce4_8422_2325_u128;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A mutex poisoned by a panicking engine thread still guards a
/// structurally valid free list (every transition completes before the
/// guard drops), so recover the data instead of propagating the panic —
/// same idiom as `m2x_serve`'s `lock_poisoned`.
fn lock_pool(m: &Mutex<PoolInner>) -> MutexGuard<'_, PoolInner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Copies a `rows × width` block of `m` starting at (`r0`, `c0`).
fn slice_block(m: &Matrix, r0: usize, rows: usize, c0: usize, width: usize) -> Matrix {
    Matrix::from_fn(rows, width, |r, c| m[(r0 + r, c0 + c)])
}

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Chains `n` prompt rows starting at `r0` onto `prev`: two independent
/// 64-bit streams over the raw f32 bit patterns, so the 128-bit key of a
/// prefix commits to every byte of every row it covers. Collisions are
/// additionally guarded by the bitwise source-row compare at lookup.
fn hash_rows(prev: u128, m: &Matrix, r0: usize, n: usize) -> u128 {
    let mut a = (prev as u64) ^ 0xcbf2_9ce4_8422_2325;
    let mut b = ((prev >> 64) as u64) ^ 0x9e37_79b9_7f4a_7c15;
    for i in 0..n {
        for &v in m.row(r0 + i) {
            let bits = v.to_bits();
            a = fnv_bytes(a, &bits.to_le_bytes());
            b = b
                .wrapping_add((bits as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .rotate_left(17)
                ^ a;
        }
    }
    ((b as u128) << 64) | (a as u128)
}

/// `true` iff `n` rows of `m` starting at `r0` are bit-identical to `rows`.
fn rows_bit_equal(rows: &Matrix, m: &Matrix, r0: usize, n: usize) -> bool {
    if rows.rows() != n || rows.cols() != m.cols() {
        return false;
    }
    (0..n).all(|i| {
        rows.row(i)
            .iter()
            .zip(m.row(r0 + i))
            .all(|(x, y)| x.to_bits() == y.to_bits())
    })
}

/// Content checksum of a page frame: every packed stream byte (K and V)
/// plus the dequantized V row bits. [`KvPagePool::verify_frozen`] re-runs
/// this to prove shared pages were never mutated in place.
fn checksum_entries(entries: &[PageEntry]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for e in entries {
        let kp = e.k.packed();
        h = fnv_bytes(h, kp.codes());
        h = fnv_bytes(h, kp.scales());
        h = fnv_bytes(h, kp.meta());
        h = fnv_bytes(h, e.v.codes());
        h = fnv_bytes(h, e.v.scales());
        h = fnv_bytes(h, e.v.meta());
        for r in 0..e.v_rows.rows() {
            for &v in e.v_rows.row(r) {
                h = fnv_bytes(h, &v.to_bits().to_le_bytes());
            }
        }
    }
    h
}

/// Shape of every page a pool hands out.
#[derive(Debug, Clone, Copy)]
pub struct PoolGeometry {
    /// Transformer layers covered by one page.
    pub layers: usize,
    /// KV heads per layer.
    pub kv_heads: usize,
    /// Width of one KV head's rows.
    pub head_dim: usize,
    /// Tokens per page — a positive multiple of `cfg.group_size`, so a
    /// page boundary never splits a quantization group.
    pub page_tokens: usize,
    /// Quantization configuration of the packed streams.
    pub cfg: M2xfpConfig,
    /// Execution backend the K blocks are prepared for.
    pub backend: BackendKind,
}

impl PoolGeometry {
    fn validate(&self) -> Result<(), Error> {
        let gs = self.cfg.group_size;
        if self.layers == 0
            || self.kv_heads == 0
            || self.page_tokens == 0
            || self.page_tokens % gs != 0
        {
            return Err(Error::config(format!(
                "pool geometry: layers {} / kv_heads {} must be positive and page_tokens {} a \
                 positive multiple of group_size {gs}",
                self.layers, self.kv_heads, self.page_tokens
            )));
        }
        Ok(())
    }
}

/// One `(layer, kv_head)` KV block of a page: K rows prepared for the
/// execution backend (packed streams + decoded score-GEMM operand, grown
/// decode-on-append) and V rows quantized per token with their
/// dequantized form cached. `Clone` is cheap on K (`PreparedWeights` is
/// Arc-internal CoW) and deep on the V state.
#[derive(Debug, Clone)]
pub(crate) struct PageEntry {
    pub(crate) k: PreparedWeights,
    pub(crate) v: PackedWeightTensor,
    pub(crate) v_rows: Matrix,
}

impl PageEntry {
    /// Drops all rows while keeping stream capacity — the cleared entry
    /// compares equal to a freshly quantized empty one, so recycled
    /// frames carry no trace of their previous tenant.
    fn clear(&mut self) {
        self.k.clear_rows();
        self.v.clear_rows();
        self.v_rows.clear_rows();
    }
}

/// Metadata attached to a page when its content is frozen for prefix
/// sharing. Set once (`OnceLock`); a page with meta is immutable — any
/// outstanding `Weak` makes `Arc::get_mut` fail, which is exactly what
/// routes appends through the copy-on-write clone.
#[derive(Debug)]
struct FrozenMeta {
    /// Chain hash of the prompt rows up to and including this page.
    chain_hash: u128,
    /// [`checksum_entries`] of the frozen frame, for mutation audits.
    content_sum: u64,
    /// The prompt rows this page's KV state was computed from, kept for
    /// the bitwise compare that guards against hash collisions.
    src_rows: Matrix,
    /// The prefill output rows for those tokens, so an adopting request
    /// can reproduce its solo response without recomputing the prefix.
    out_rows: Matrix,
}

/// A page's storage plus its route back to the pool: dropping the last
/// handle clears the frame and returns it to the free list.
#[derive(Debug)]
struct PageBox {
    pool: Weak<KvPagePool>,
    entries: Vec<PageEntry>,
    meta: OnceLock<FrozenMeta>,
}

impl Drop for PageBox {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            let mut entries = std::mem::take(&mut self.entries);
            // Clear before taking the pool lock — `PreparedWeights::
            // clear_rows` may rebuild a shared inner, which is arbitrary
            // work that must not run under the free-list mutex.
            for e in &mut entries {
                e.clear();
            }
            pool.release(entries);
        }
    }
}

/// Refcounted handle to one page. `Clone` is an `Arc` clone — sessions
/// sharing a prefix (or a cloned session) hold the same page until one of
/// them appends, at which point [`PageHandle::make_mut`] clones it.
#[derive(Debug, Clone)]
pub struct PageHandle(Arc<PageBox>);

impl PageHandle {
    /// Mutable access to the page, cloning first when shared — a frozen
    /// or session-shared page is never mutated in place. The clone is the
    /// cold path; steady-state decode appends hit the in-place branch.
    fn make_mut(&mut self, pool: &KvPagePool) -> &mut PageBox {
        if Arc::get_mut(&mut self.0).is_none() {
            pool.note_cow();
            self.0 = Arc::new(PageBox {
                pool: self.0.pool.clone(),
                entries: self.0.entries.clone(),
                meta: OnceLock::new(),
            });
        }
        // m2x-lint: allow(panic) the handle was created or proven unshared one line up
        Arc::get_mut(&mut self.0).expect("freshly cloned page handle is unshared")
    }

    /// `true` iff both handles point at the same page storage.
    pub fn same_page(&self, other: &PageHandle) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Counter snapshot of a pool, taken under the pool lock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolStats {
    /// Pages currently owned by live handles.
    pub pages_in_use: u64,
    /// High-water mark of `pages_in_use`.
    pub peak_pages: u64,
    /// Frames built from scratch (free list was empty).
    pub page_allocs: u64,
    /// Frames recycled off the free list.
    pub page_reuses: u64,
    /// Frames returned (dropped handles).
    pub releases: u64,
    /// Copy-on-write page clones (append hit a shared page).
    pub cow_clones: u64,
    /// Prefix-index probes that adopted a page.
    pub prefix_hits: u64,
    /// Prefix lookups that stopped at a page with no live match.
    pub prefix_misses: u64,
    /// Frames currently parked on the free list.
    pub free_pages: u64,
    /// Frozen prefix pages the pool keeps alive.
    pub retained_pages: u64,
    /// Retained pages currently shared with at least one session.
    pub shared_pages: u64,
}

struct PoolInner {
    free: Vec<Vec<PageEntry>>,
    index: HashMap<u128, Weak<PageBox>>,
    retained: VecDeque<Arc<PageBox>>,
    pages_in_use: u64,
    peak_pages: u64,
    page_allocs: u64,
    page_reuses: u64,
    releases: u64,
    cow_clones: u64,
    prefix_hits: u64,
    prefix_misses: u64,
}

/// The shared page allocator + prefix index. One pool per
/// [`ModelWeights`](crate::ModelWeights); every session's
/// [`PagedKv`] allocates from it.
pub struct KvPagePool {
    geom: PoolGeometry,
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for KvPagePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvPagePool")
            .field("geom", &self.geom)
            .field("stats", &self.stats())
            .finish()
    }
}

/// The result of a successful prefix probe: the shared pages, how many
/// tokens they cover, and the prefill output rows for those tokens.
#[derive(Debug, Clone)]
pub struct PrefixMatch {
    /// Frozen pages to adopt, in sequence order.
    pub pages: Vec<PageHandle>,
    /// Tokens the pages cover (`pages.len() * page_tokens`).
    pub tokens: usize,
    /// Stitched prefill output rows (`[tokens, hidden]`) recorded when
    /// the prefix was registered — bit-identical to recomputing them.
    pub out_rows: Matrix,
}

impl KvPagePool {
    /// Builds a pool for the given page shape.
    ///
    /// # Errors
    ///
    /// Fails when `page_tokens` is not a positive multiple of the group
    /// size or a dimension is zero.
    pub fn new(geom: PoolGeometry) -> Result<Arc<Self>, Error> {
        geom.validate()?;
        Ok(Arc::new(KvPagePool {
            geom,
            inner: Mutex::new(PoolInner {
                free: Vec::new(),
                index: HashMap::new(),
                retained: VecDeque::new(),
                pages_in_use: 0,
                peak_pages: 0,
                page_allocs: 0,
                page_reuses: 0,
                releases: 0,
                cow_clones: 0,
                prefix_hits: 0,
                prefix_misses: 0,
            }),
        }))
    }

    /// The page shape this pool hands out.
    pub fn geometry(&self) -> &PoolGeometry {
        &self.geom
    }

    /// Tokens per page.
    pub fn page_tokens(&self) -> usize {
        self.geom.page_tokens
    }

    /// Takes one page: recycled off the free list when possible (O(1),
    /// allocation-free), built from scratch otherwise.
    // m2x-lint: hot
    pub fn acquire(self: &Arc<Self>) -> PageHandle {
        let recycled = {
            let mut g = lock_pool(&self.inner);
            let frame = g.free.pop();
            if frame.is_some() {
                g.page_reuses += 1;
            } else {
                g.page_allocs += 1;
            }
            g.pages_in_use += 1;
            g.peak_pages = g.peak_pages.max(g.pages_in_use);
            frame
        };
        let entries = match recycled {
            Some(frame) => frame,
            None => self.fresh_frame(),
        };
        PageHandle(Arc::new(PageBox {
            pool: Arc::downgrade(self),
            entries,
            meta: OnceLock::new(),
        }))
    }

    /// Builds a brand-new empty frame (the acquire cold path).
    fn fresh_frame(&self) -> Vec<PageEntry> {
        let g = &self.geom;
        let be = g.backend.backend();
        (0..g.layers * g.kv_heads)
            .map(|_| PageEntry {
                k: be.prepare(PackedWeightTensor::empty(g.head_dim, g.cfg)),
                v: PackedWeightTensor::empty(g.head_dim, g.cfg),
                v_rows: Matrix::zeros(0, g.head_dim),
            })
            .collect()
    }

    /// Returns a cleared frame to the free list (called from the last
    /// handle's drop). Frames beyond [`FREE_LIST_CAP`] are dropped, and
    /// dropped outside the lock.
    // m2x-lint: hot
    fn release(&self, mut frame: Vec<PageEntry>) {
        let overflow = {
            let mut g = lock_pool(&self.inner);
            g.releases += 1;
            g.pages_in_use = g.pages_in_use.saturating_sub(1);
            if g.free.len() < FREE_LIST_CAP {
                g.free.push(std::mem::take(&mut frame));
                None
            } else {
                Some(std::mem::take(&mut frame))
            }
        };
        drop(overflow);
    }

    fn note_cow(&self) {
        let mut g = lock_pool(&self.inner);
        g.cow_clones += 1;
        g.pages_in_use += 1;
        g.peak_pages = g.peak_pages.max(g.pages_in_use);
    }

    /// Probes the prefix index for the longest run of frozen pages whose
    /// source rows are bit-identical to the front of `prompt`. Adoption
    /// is capped at `prompt.rows() - 1` tokens so at least one suffix row
    /// remains for the adopting request's own prefill step.
    pub fn lookup_prefix(&self, prompt: &Matrix) -> Option<PrefixMatch> {
        let pt = self.geom.page_tokens;
        let max_pages = prompt.rows().saturating_sub(1) / pt;
        if max_pages == 0 {
            return None;
        }
        let mut h = CHAIN_SEED;
        let mut pages: Vec<PageHandle> = Vec::new();
        let mut out: Option<Matrix> = None;
        let mut missed = false;
        for pi in 0..max_pages {
            h = hash_rows(h, prompt, pi * pt, pt);
            let found = {
                let g = lock_pool(&self.inner);
                g.index.get(&h).and_then(Weak::upgrade)
            };
            let Some(page) = found else {
                missed = true;
                break;
            };
            let ok = page.meta.get().is_some_and(|m| {
                m.chain_hash == h && rows_bit_equal(&m.src_rows, prompt, pi * pt, pt)
            });
            if !ok {
                missed = true;
                break;
            }
            // The compare above proved the page covers exactly these
            // prompt rows, so its recorded output rows are the rows a
            // solo prefill would produce.
            if let Some(meta) = page.meta.get() {
                match &mut out {
                    Some(m) => m.push_rows(&meta.out_rows),
                    None => out = Some(meta.out_rows.clone()),
                }
            }
            pages.push(PageHandle(page));
        }
        {
            let mut g = lock_pool(&self.inner);
            g.prefix_hits += pages.len() as u64;
            g.prefix_misses += u64::from(missed);
        }
        let out = out?;
        Some(PrefixMatch {
            tokens: pages.len() * pt,
            pages,
            out_rows: out,
        })
    }

    /// Freezes the full pages of a completed prefill and publishes them
    /// in the prefix index, keyed by the chain hash of the prompt rows
    /// they cover. The pool retains up to [`RETAIN_CAP`] frozen pages
    /// (FIFO) so a prefix outlives the request that produced it. Pages
    /// already frozen (an adopted prefix, a replayed request) are left
    /// as-is; a live index entry is never displaced.
    pub fn register_prefix(&self, prompt: &Matrix, prefill_out: &Matrix, kv: &PagedKv) {
        let pt = self.geom.page_tokens;
        let full = (prompt.rows() / pt)
            .min(kv.pages.len())
            .min(prefill_out.rows() / pt);
        let mut h = CHAIN_SEED;
        let mut evicted: Vec<Arc<PageBox>> = Vec::new();
        for pi in 0..full {
            h = hash_rows(h, prompt, pi * pt, pt);
            let page = &kv.pages[pi].0;
            if page.meta.get().is_none() {
                let meta = FrozenMeta {
                    chain_hash: h,
                    content_sum: checksum_entries(&page.entries),
                    src_rows: slice_block(prompt, pi * pt, pt, 0, prompt.cols()),
                    out_rows: slice_block(prefill_out, pi * pt, pt, 0, prefill_out.cols()),
                };
                let _ = page.meta.set(meta);
            }
            let mut g = lock_pool(&self.inner);
            let slot = g.index.entry(h).or_insert_with(Weak::new);
            if slot.upgrade().is_none() {
                *slot = Arc::downgrade(page);
                g.retained.push_back(Arc::clone(page));
                while g.retained.len() > RETAIN_CAP {
                    if let Some(old) = g.retained.pop_front() {
                        evicted.push(old);
                    }
                }
            }
        }
        // Evicted pages drop (and recycle) outside the pool lock.
        drop(evicted);
    }

    /// Drops every retained prefix page and clears the index — the
    /// serving engine calls this on shutdown so the zero-leak invariant
    /// (`pages_in_use == 0` once all sessions are gone) holds.
    pub fn clear_retained(&self) {
        let drained: Vec<Arc<PageBox>> = {
            let mut g = lock_pool(&self.inner);
            g.index.clear();
            g.retained.drain(..).collect()
        };
        drop(drained);
    }

    /// Re-checksums every retained frozen page against the sum recorded
    /// at freeze time. `true` means no shared page was ever mutated in
    /// place — the property tests assert this after arbitrary churn.
    pub fn verify_frozen(&self) -> bool {
        let retained: Vec<Arc<PageBox>> = {
            let g = lock_pool(&self.inner);
            g.retained.iter().cloned().collect()
        };
        retained.iter().all(|p| {
            p.meta
                .get()
                .is_some_and(|m| checksum_entries(&p.entries) == m.content_sum)
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        let g = lock_pool(&self.inner);
        PoolStats {
            pages_in_use: g.pages_in_use,
            peak_pages: g.peak_pages,
            page_allocs: g.page_allocs,
            page_reuses: g.page_reuses,
            releases: g.releases,
            cow_clones: g.cow_clones,
            prefix_hits: g.prefix_hits,
            prefix_misses: g.prefix_misses,
            free_pages: g.free.len() as u64,
            retained_pages: g.retained.len() as u64,
            shared_pages: g
                .retained
                .iter()
                .filter(|p| Arc::strong_count(p) >= 2)
                .count() as u64,
        }
    }
}

/// A session's view of its KV state: page handles into the shared pool
/// plus per-layer token counts. Replaces the per-session owned `KvCache`
/// vector; cloning a `PagedKv` shares its pages (copy-on-write on the
/// next append).
#[derive(Debug, Clone)]
pub struct PagedKv {
    pool: Arc<KvPagePool>,
    pages: Vec<PageHandle>,
    /// Tokens appended per layer. Tracked per layer because within one
    /// step layer 0's append runs ahead of the rest and is the one that
    /// acquires new pages.
    layer_len: Vec<usize>,
}

impl PagedKv {
    /// An empty view into `pool`.
    pub fn new(pool: Arc<KvPagePool>) -> Self {
        let layers = pool.geometry().layers;
        PagedKv {
            pool,
            pages: Vec::new(),
            layer_len: vec![0; layers],
        }
    }

    /// The pool this view allocates from.
    pub fn pool(&self) -> &Arc<KvPagePool> {
        &self.pool
    }

    /// Cached sequence length in tokens (layer 0 leads within a step;
    /// all layers agree between steps).
    pub fn tokens(&self) -> usize {
        self.layer_len.first().copied().unwrap_or(0)
    }

    /// Tokens appended for layer `li`.
    pub fn layer_len(&self, li: usize) -> usize {
        self.layer_len[li]
    }

    /// Pages currently held.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Rows of layer `li` stored in page `pi`.
    pub fn page_rows(&self, li: usize, pi: usize) -> usize {
        let pt = self.pool.geom.page_tokens;
        self.layer_len[li].saturating_sub(pi * pt).min(pt)
    }

    /// The prepared K block of `(page, layer, kv_head)`.
    pub fn page_k(&self, pi: usize, li: usize, h: usize) -> &PreparedWeights {
        &self.pages[pi].0.entries[li * self.pool.geom.kv_heads + h].k
    }

    /// The dequantized V rows of `(page, layer, kv_head)`.
    pub fn page_v_rows(&self, pi: usize, li: usize, h: usize) -> &Matrix {
        &self.pages[pi].0.entries[li * self.pool.geom.kv_heads + h].v_rows
    }

    /// Quantizes and appends new K/V projection rows (`[tokens, kv_dim]`)
    /// for layer `li`, splitting them across page boundaries. Within a
    /// page the per-head work is exactly the old monolithic append — K
    /// rows decode-on-append into the prepared form, V rows quantize once
    /// and cache their dequantized values — so paged growth is
    /// bit-identical to the unpaged cache. Appending through a shared
    /// handle clones the page first (copy-on-write).
    ///
    /// # Errors
    ///
    /// Fails on a width mismatch against the pool geometry.
    // m2x-lint: hot
    pub fn append_layer(&mut self, li: usize, k_new: &Matrix, v_new: &Matrix) -> Result<(), Error> {
        let geom = *self.pool.geometry();
        let kv_dim = geom.kv_heads * geom.head_dim;
        if k_new.cols() != kv_dim || v_new.cols() != kv_dim || k_new.rows() != v_new.rows() {
            return Err(Error::WidthMismatch {
                // m2x-lint: allow(alloc) cold error path
                tensor: "paged kv append".to_string(),
                expected: kv_dim,
                got: k_new.cols().max(v_new.cols()),
            });
        }
        let be = geom.backend.backend();
        let pt = geom.page_tokens;
        let tokens = k_new.rows();
        let mut done = 0;
        while done < tokens {
            let pos = self.layer_len[li];
            let pidx = pos / pt;
            let take = (pt - pos % pt).min(tokens - done);
            if pidx == self.pages.len() {
                let pool = Arc::clone(&self.pool);
                self.pages.push(pool.acquire());
            }
            let page = self.pages[pidx].make_mut(&self.pool);
            for h in 0..geom.kv_heads {
                let e = &mut page.entries[li * geom.kv_heads + h];
                let ks = slice_block(k_new, done, take, h * geom.head_dim, geom.head_dim);
                be.append_rows(&mut e.k, &ks)?;
                let vs = slice_block(v_new, done, take, h * geom.head_dim, geom.head_dim);
                let vq = PackedWeightTensor::quantize_parallel(&vs, geom.cfg);
                e.v_rows.push_rows(&vq.dequantize());
                e.v.append_packed(vq)?;
            }
            self.layer_len[li] = pos + take;
            done += take;
        }
        Ok(())
    }

    /// Adopts frozen prefix pages into an empty view: the session starts
    /// at `tokens` as if it had prefilled them itself. Must only be
    /// called on a fresh (empty) view.
    pub fn adopt_prefix(&mut self, pages: Vec<PageHandle>, tokens: usize) {
        debug_assert!(self.pages.is_empty() && self.tokens() == 0);
        debug_assert_eq!(tokens, pages.len() * self.pool.geom.page_tokens);
        self.pages = pages;
        for l in &mut self.layer_len {
            *l = tokens;
        }
    }

    /// Releases every page back to the pool and resets the view.
    pub fn clear(&mut self) {
        self.pages.clear();
        for l in &mut self.layer_len {
            *l = 0;
        }
    }

    /// Packed footprint of the held pages in bytes — the canonical
    /// 4.5-bit three-stream representation. This is what the serving
    /// admission budget (`kv_budget_bytes`) gates on; pages shared with
    /// other sessions are counted once per holder.
    pub fn packed_bytes(&self) -> usize {
        self.pages
            .iter()
            .flat_map(|p| p.0.entries.iter())
            .map(|e| e.k.packed().packed_bytes() + e.v.packed_bytes())
            .sum()
    }

    /// Decoded working state on top of the packed streams: the K
    /// execution planes plus the dequantized V row cache. Unmetered by
    /// the admission budget, reported separately so accounting is honest.
    pub fn decoded_bytes(&self) -> usize {
        self.pages
            .iter()
            .flat_map(|p| p.0.entries.iter())
            .map(|e| {
                e.k.decoded_bytes() + e.v_rows.rows() * e.v_rows.cols() * std::mem::size_of::<f32>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> PoolGeometry {
        PoolGeometry {
            layers: 2,
            kv_heads: 2,
            head_dim: 32,
            page_tokens: 32,
            cfg: M2xfpConfig::default(),
            backend: BackendKind::Packed,
        }
    }

    fn rows(tokens: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(tokens, cols, |r, c| {
            (((r * 31 + c * 7) as f32 * 0.13 + seed).sin()) * 0.5
        })
    }

    fn append_all(kv: &mut PagedKv, k: &Matrix, v: &Matrix) {
        for li in 0..kv.pool().geometry().layers {
            kv.append_layer(li, k, v).unwrap();
        }
    }

    fn page_checksums(kv: &PagedKv) -> Vec<u64> {
        kv.pages
            .iter()
            .map(|p| checksum_entries(&p.0.entries))
            .collect()
    }

    #[test]
    fn geometry_rejects_group_splitting_pages() {
        let mut g = geom();
        g.page_tokens = 48; // not a multiple of group_size 32
        assert!(KvPagePool::new(g).is_err());
        g.page_tokens = 0;
        assert!(KvPagePool::new(g).is_err());
    }

    #[test]
    fn append_spans_pages_and_tracks_lengths() {
        let pool = KvPagePool::new(geom()).unwrap();
        let mut kv = PagedKv::new(Arc::clone(&pool));
        let (k, v) = (rows(40, 64, 0.0), rows(40, 64, 1.0));
        append_all(&mut kv, &k, &v);
        assert_eq!(kv.page_count(), 2);
        assert_eq!(kv.tokens(), 40);
        assert_eq!(kv.page_rows(0, 0), 32);
        assert_eq!(kv.page_rows(0, 1), 8);
        assert_eq!(kv.page_rows(1, 1), 8);
        assert!(kv.packed_bytes() > 0);
        assert!(kv.decoded_bytes() > 0);
        let s = pool.stats();
        assert_eq!(s.pages_in_use, 2);
        assert_eq!(s.page_allocs, 2);
    }

    #[test]
    fn recycled_page_leaves_no_trace() {
        // Fill, release, re-fill with different data, then compare
        // against a never-recycled pool fed the same second dataset.
        let pool = KvPagePool::new(geom()).unwrap();
        let mut kv = PagedKv::new(Arc::clone(&pool));
        append_all(&mut kv, &rows(40, 64, 0.0), &rows(40, 64, 1.0));
        kv.clear();
        let s = pool.stats();
        assert_eq!(s.pages_in_use, 0);
        assert_eq!(s.free_pages, 2);

        let mut kv2 = PagedKv::new(Arc::clone(&pool));
        append_all(&mut kv2, &rows(40, 64, 2.0), &rows(40, 64, 3.0));
        assert!(pool.stats().page_reuses >= 2);

        let fresh_pool = KvPagePool::new(geom()).unwrap();
        let mut fresh = PagedKv::new(Arc::clone(&fresh_pool));
        append_all(&mut fresh, &rows(40, 64, 2.0), &rows(40, 64, 3.0));
        assert_eq!(page_checksums(&kv2), page_checksums(&fresh));
    }

    #[test]
    fn cloned_view_copies_on_write() {
        // 20 tokens leave page 0 partially filled, so the fork's append
        // writes into a shared page and must trigger the CoW clone.
        let pool = KvPagePool::new(geom()).unwrap();
        let mut kv = PagedKv::new(Arc::clone(&pool));
        append_all(&mut kv, &rows(20, 64, 0.0), &rows(20, 64, 1.0));
        let before = page_checksums(&kv);

        let mut forked = kv.clone();
        append_all(&mut forked, &rows(4, 64, 2.0), &rows(4, 64, 3.0));
        assert_eq!(kv.tokens(), 20);
        assert_eq!(forked.tokens(), 24);
        assert_eq!(
            page_checksums(&kv),
            before,
            "original view must be untouched"
        );
        assert!(!kv.pages[0].same_page(&forked.pages[0]));
        assert_eq!(pool.stats().cow_clones, 1, "one shared page, one clone");
    }

    #[test]
    fn full_shared_page_is_not_forked_by_later_appends() {
        // An exactly-full shared page never receives another append —
        // growth goes to a fresh page, and the prefix stays shared.
        let pool = KvPagePool::new(geom()).unwrap();
        let mut kv = PagedKv::new(Arc::clone(&pool));
        append_all(&mut kv, &rows(32, 64, 0.0), &rows(32, 64, 1.0));
        let mut forked = kv.clone();
        append_all(&mut forked, &rows(4, 64, 2.0), &rows(4, 64, 3.0));
        assert!(kv.pages[0].same_page(&forked.pages[0]));
        assert_eq!(forked.page_count(), 2);
        assert_eq!(pool.stats().cow_clones, 0);
    }

    #[test]
    fn register_then_lookup_adopts_frozen_pages() {
        let pool = KvPagePool::new(geom()).unwrap();
        let mut kv = PagedKv::new(Arc::clone(&pool));
        let prompt = rows(40, 16, 0.5);
        let out = rows(40, 16, 4.0);
        append_all(&mut kv, &rows(40, 64, 0.0), &rows(40, 64, 1.0));
        pool.register_prefix(&prompt, &out, &kv);
        assert!(pool.verify_frozen());

        let m = pool.lookup_prefix(&prompt).expect("prefix must hit");
        assert_eq!(m.tokens, 32);
        assert_eq!(m.pages.len(), 1);
        assert!(m.pages[0].same_page(&kv.pages[0]));
        assert!(rows_bit_equal(&m.out_rows, &out, 0, 32));

        // A different prompt must miss (and count as a miss).
        assert!(pool.lookup_prefix(&rows(40, 16, 9.0)).is_none());
        let s = pool.stats();
        assert_eq!(s.prefix_hits, 1);
        assert_eq!(s.prefix_misses, 1);
        assert_eq!(s.retained_pages, 1);
        assert!(s.shared_pages >= 1);
    }

    #[test]
    fn adoption_caps_below_full_prompt() {
        // 64 rows = exactly 2 pages, but at least one suffix row must
        // remain, so only 1 page (32 tokens) is adoptable.
        let pool = KvPagePool::new(geom()).unwrap();
        let mut kv = PagedKv::new(Arc::clone(&pool));
        let prompt = rows(64, 16, 0.5);
        append_all(&mut kv, &rows(64, 64, 0.0), &rows(64, 64, 1.0));
        pool.register_prefix(&prompt, &rows(64, 16, 4.0), &kv);
        let m = pool.lookup_prefix(&prompt).expect("prefix must hit");
        assert_eq!(m.tokens, 32);
    }

    #[test]
    fn adopted_prefix_stays_shared_and_unmutated() {
        let pool = KvPagePool::new(geom()).unwrap();
        let mut kv = PagedKv::new(Arc::clone(&pool));
        let prompt = rows(40, 16, 0.5);
        append_all(&mut kv, &rows(40, 64, 0.0), &rows(40, 64, 1.0));
        pool.register_prefix(&prompt, &rows(40, 16, 4.0), &kv);

        let m = pool.lookup_prefix(&prompt).expect("prefix must hit");
        let mut adopter = PagedKv::new(Arc::clone(&pool));
        adopter.adopt_prefix(m.pages, m.tokens);
        assert_eq!(adopter.tokens(), 32);
        append_all(&mut adopter, &rows(8, 64, 7.0), &rows(8, 64, 8.0));
        assert_eq!(adopter.tokens(), 40);
        // Suffix growth lands in a fresh page; the adopted full page
        // stays shared and untouched.
        assert!(adopter.pages[0].same_page(&kv.pages[0]));
        assert_eq!(adopter.page_count(), 2);
        assert!(pool.verify_frozen(), "frozen page mutated in place");
    }

    #[test]
    fn frozen_page_write_copies_instead_of_mutating() {
        // Force the degenerate case the CoW rule exists for: a write
        // that does land inside a frozen (index-retained) page. A
        // cloned view of a partially-filled page whose full sibling is
        // frozen exercises get_mut failing on the retained strong ref.
        let pool = KvPagePool::new(geom()).unwrap();
        let mut kv = PagedKv::new(Arc::clone(&pool));
        let prompt = rows(40, 16, 0.5);
        append_all(&mut kv, &rows(40, 64, 0.0), &rows(40, 64, 1.0));
        pool.register_prefix(&prompt, &rows(40, 16, 4.0), &kv);
        let frozen_sum = checksum_entries(&kv.pages[0].0.entries);

        // Drop the session; the frozen page survives via the retained
        // list. Adopt it, then append through a handle while the pool
        // still retains it — writes must clone, never mutate.
        drop(kv);
        let m = pool.lookup_prefix(&prompt).expect("prefix must hit");
        let mut adopter = PagedKv::new(Arc::clone(&pool));
        adopter.adopt_prefix(m.pages, m.tokens);
        // Reach into the frozen page directly: make_mut must fork.
        let forked = adopter.pages[0].make_mut(&pool);
        assert_eq!(checksum_entries(&forked.entries), frozen_sum);
        assert!(pool.stats().cow_clones >= 1);
        assert!(pool.verify_frozen(), "frozen page mutated in place");
    }

    #[test]
    fn zero_leak_after_clear_retained() {
        let pool = KvPagePool::new(geom()).unwrap();
        let mut kv = PagedKv::new(Arc::clone(&pool));
        let prompt = rows(40, 16, 0.5);
        append_all(&mut kv, &rows(40, 64, 0.0), &rows(40, 64, 1.0));
        pool.register_prefix(&prompt, &rows(40, 16, 4.0), &kv);
        drop(kv);
        assert_eq!(
            pool.stats().pages_in_use,
            1,
            "retained prefix page survives"
        );
        pool.clear_retained();
        let s = pool.stats();
        assert_eq!(s.pages_in_use, 0, "every page back on the free list");
        assert!(pool.lookup_prefix(&prompt).is_none(), "index cleared");
    }

    #[test]
    fn paged_append_matches_monolithic_quantization() {
        // One long append vs token-by-token appends across a page
        // boundary: identical packed bits (rows quantize independently).
        let pool = KvPagePool::new(geom()).unwrap();
        let (k, v) = (rows(40, 64, 0.0), rows(40, 64, 1.0));
        let mut whole = PagedKv::new(Arc::clone(&pool));
        append_all(&mut whole, &k, &v);

        let pool2 = KvPagePool::new(geom()).unwrap();
        let mut stepped = PagedKv::new(Arc::clone(&pool2));
        for t in 0..40 {
            let kt = slice_block(&k, t, 1, 0, 64);
            let vt = slice_block(&v, t, 1, 0, 64);
            append_all(&mut stepped, &kt, &vt);
        }
        assert_eq!(page_checksums(&whole), page_checksums(&stepped));
    }
}
