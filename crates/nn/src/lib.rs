//! # m2x-nn
//!
//! Synthetic LLM substrate for the M2XFP reproduction.
//!
//! The paper evaluates on real checkpoints (LLaMA-2/3, OPT, Mistral,
//! Falcon, DeepSeek-R1-Distill-Qwen) via PyTorch + lm-evaluation-harness.
//! Neither the checkpoints nor a GPU stack are available here, so this
//! crate substitutes statistically calibrated synthetic tensors and exactly
//! computable error propagation (see DESIGN.md §1 for the substitution
//! argument):
//!
//! * [`profile`] — per-model architecture shapes and tensor statistics
//!   (outlier channel rates, tail weights) for all eight evaluated models.
//! * [`synth`] — seeded weight/activation synthesis from a profile.
//! * [`layers`] — the transformer GEMM inventory (QKVO + MLP + attention),
//!   shared with the accelerator timing model.
//! * [`propagate`] — W4A4 layer error measurement: quantized GEMMs vs the
//!   f32 reference, aggregated across layer kinds.
//! * [`metrics`] — perplexity and task-accuracy proxies anchored to the
//!   paper's published FP16/MXFP4 rows (anchors are constants; every other
//!   number is predicted from measured error).
//! * [`attention`] — the §6.4 extension: quantized attention with an
//!   Elem-EM online path (Q, P) and an Sg-EM KV cache.
//! * [`linear`] — a deployable quantized linear layer (packed weights,
//!   prepared once per execution backend, bit-exact forward pass).
//! * [`model`] — the engine API's model-level session: a
//!   [`QuantizedModel`] built by a
//!   [`ModelBuilder`], with per-layer prepared
//!   weights, a quantized KV cache and batch/prefill/decode forwards — the
//!   paper's §6 end-to-end flow. The weights split into an `Arc`-shared
//!   [`ModelWeights`] and per-request
//!   [`SessionState`]s, the multi-session surface the
//!   `m2x-serve` continuous-batching scheduler drives.

pub mod attention;
pub mod kv_pool;
pub mod layers;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod profile;
pub mod propagate;
pub mod synth;

pub use kv_pool::{KvPagePool, PageHandle, PagedKv, PoolGeometry, PoolStats, PrefixMatch};
pub use linear::QuantizedLinear;
pub use model::{ModelBuilder, ModelWeights, QuantizedModel, SessionState};
pub use profile::ModelProfile;
pub use propagate::{W4a4Error, W4a4Stats};
