//! Per-model statistical profiles.
//!
//! Each profile carries (a) the real architecture shapes of the evaluated
//! checkpoint (public model-card facts) and (b) distribution knobs for the
//! synthetic tensors — outlier channel rate/scale and tail weight — set so
//! the *relative* quantization sensitivity across models mirrors the
//! paper's Tbl. 3 spread (OPT most sensitive, Falcon least). Published
//! FP16/MXFP4 anchor rows used by the proxies live in [`crate::metrics`].

/// MLP topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlpKind {
    /// Gated (SwiGLU): gate + up + down projections (LLaMA/Mistral/Qwen).
    Gated,
    /// Plain two-matrix MLP (OPT, Falcon).
    Plain,
}

/// A model profile: architecture + synthetic-distribution knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Display name as used in the paper's tables.
    pub name: &'static str,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// MLP intermediate dimension.
    pub intermediate: usize,
    /// Number of transformer layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// KV heads (GQA when < heads).
    pub kv_heads: usize,
    /// MLP topology.
    pub mlp: MlpKind,
    /// Laplace scale of weight entries.
    pub weight_b: f32,
    /// Lognormal sigma of per-output-channel weight scales.
    pub weight_channel_spread: f32,
    /// Fraction of activation channels that are outlier channels.
    pub act_outlier_rate: f32,
    /// Magnitude multiplier of outlier channels.
    pub act_outlier_scale: f32,
    /// Student-t degrees of freedom for the activation body (lower = heavier
    /// tails).
    pub act_student_nu: u32,
    /// Deterministic seed root for all tensors of this model.
    pub seed: u64,
}

impl ModelProfile {
    /// LLaMA2-7B.
    pub fn llama2_7b() -> Self {
        ModelProfile {
            name: "LLaMA2-7B",
            hidden: 4096,
            intermediate: 11008,
            layers: 32,
            heads: 32,
            kv_heads: 32,
            mlp: MlpKind::Gated,
            weight_b: 0.018,
            weight_channel_spread: 0.35,
            act_outlier_rate: 0.006,
            act_outlier_scale: 24.0,
            act_student_nu: 6,
            seed: 0x11A3_A207,
        }
    }

    /// LLaMA3-8B (GQA with 8 KV heads).
    pub fn llama3_8b() -> Self {
        ModelProfile {
            name: "LLaMA3-8B",
            hidden: 4096,
            intermediate: 14336,
            layers: 32,
            heads: 32,
            kv_heads: 8,
            mlp: MlpKind::Gated,
            weight_b: 0.016,
            weight_channel_spread: 0.40,
            act_outlier_rate: 0.008,
            act_outlier_scale: 30.0,
            act_student_nu: 5,
            seed: 0x11A3_A308,
        }
    }

    /// LLaMA3-70B.
    pub fn llama3_70b() -> Self {
        ModelProfile {
            name: "LLaMA3-70B",
            hidden: 8192,
            intermediate: 28672,
            layers: 80,
            heads: 64,
            kv_heads: 8,
            mlp: MlpKind::Gated,
            weight_b: 0.012,
            weight_channel_spread: 0.45,
            act_outlier_rate: 0.010,
            act_outlier_scale: 36.0,
            act_student_nu: 4,
            seed: 0x11A3_A370,
        }
    }

    /// OPT-6.7B — the paper's most quantization-sensitive model.
    pub fn opt_6_7b() -> Self {
        ModelProfile {
            name: "OPT-6.7B",
            hidden: 4096,
            intermediate: 16384,
            layers: 32,
            heads: 32,
            kv_heads: 32,
            mlp: MlpKind::Plain,
            weight_b: 0.020,
            weight_channel_spread: 0.55,
            act_outlier_rate: 0.014,
            act_outlier_scale: 60.0,
            act_student_nu: 3,
            seed: 0x0067_0B67,
        }
    }

    /// Mistral-7B-v0.3.
    pub fn mistral_7b() -> Self {
        ModelProfile {
            name: "Mistral-7B",
            hidden: 4096,
            intermediate: 14336,
            layers: 32,
            heads: 32,
            kv_heads: 8,
            mlp: MlpKind::Gated,
            weight_b: 0.015,
            weight_channel_spread: 0.30,
            act_outlier_rate: 0.005,
            act_outlier_scale: 18.0,
            act_student_nu: 7,
            seed: 0x0715_7247,
        }
    }

    /// Falcon-7B — the paper's least quantization-sensitive model.
    pub fn falcon_7b() -> Self {
        ModelProfile {
            name: "Falcon-7B",
            hidden: 4544,
            intermediate: 18176,
            layers: 32,
            heads: 71,
            kv_heads: 71,
            mlp: MlpKind::Plain,
            weight_b: 0.017,
            weight_channel_spread: 0.25,
            act_outlier_rate: 0.004,
            act_outlier_scale: 14.0,
            act_student_nu: 8,
            seed: 0x0FA1_C047,
        }
    }

    /// DeepSeek-R1-Distill-Qwen-1.5B (reasoning, Tbl. 4).
    pub fn dsr1_qwen_1_5b() -> Self {
        ModelProfile {
            name: "DeepSeek-R1-Distill-Qwen-1.5B",
            hidden: 1536,
            intermediate: 8960,
            layers: 28,
            heads: 12,
            kv_heads: 2,
            mlp: MlpKind::Gated,
            weight_b: 0.022,
            weight_channel_spread: 0.45,
            act_outlier_rate: 0.010,
            act_outlier_scale: 34.0,
            act_student_nu: 4,
            seed: 0xD5_0015,
        }
    }

    /// DeepSeek-R1-Distill-Qwen-7B (reasoning, Tbl. 4).
    pub fn dsr1_qwen_7b() -> Self {
        ModelProfile {
            name: "DeepSeek-R1-Distill-Qwen-7B",
            hidden: 3584,
            intermediate: 18944,
            layers: 28,
            heads: 28,
            kv_heads: 4,
            mlp: MlpKind::Gated,
            weight_b: 0.018,
            weight_channel_spread: 0.38,
            act_outlier_rate: 0.007,
            act_outlier_scale: 24.0,
            act_student_nu: 5,
            seed: 0xD5_0070,
        }
    }

    /// The six Wikitext-perplexity models in Tbl. 3's column order.
    pub fn table3_models() -> Vec<ModelProfile> {
        vec![
            Self::llama2_7b(),
            Self::llama3_8b(),
            Self::llama3_70b(),
            Self::opt_6_7b(),
            Self::mistral_7b(),
            Self::falcon_7b(),
        ]
    }

    /// The three zero-shot models of Tbl. 2.
    pub fn table2_models() -> Vec<ModelProfile> {
        vec![Self::llama2_7b(), Self::llama3_8b(), Self::mistral_7b()]
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// KV projection width (GQA-aware).
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim()
    }

    /// Total parameter count of the linear stack (embeddings excluded).
    pub fn linear_params(&self) -> usize {
        let attn = self.hidden * self.hidden * 2 // Q, O
            + self.hidden * self.kv_dim() * 2; // K, V
        let mlp = match self.mlp {
            MlpKind::Gated => 3 * self.hidden * self.intermediate,
            MlpKind::Plain => 2 * self.hidden * self.intermediate,
        };
        (attn + mlp) * self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_are_plausible() {
        // Linear-stack params should land near the nominal model size.
        let b = 1e9;
        let approx = |p: &ModelProfile| p.linear_params() as f64 / b;
        assert!((5.5..8.0).contains(&approx(&ModelProfile::llama2_7b())));
        assert!((6.0..8.5).contains(&approx(&ModelProfile::llama3_8b())));
        assert!((55.0..75.0).contains(&approx(&ModelProfile::llama3_70b())));
        assert!((5.5..8.0).contains(&approx(&ModelProfile::opt_6_7b())));
        assert!((6.0..8.0).contains(&approx(&ModelProfile::mistral_7b())));
        assert!((5.5..8.0).contains(&approx(&ModelProfile::falcon_7b())));
    }

    #[test]
    fn gqa_dimensions() {
        let p = ModelProfile::llama3_8b();
        assert_eq!(p.head_dim(), 128);
        assert_eq!(p.kv_dim(), 1024);
        let p2 = ModelProfile::llama2_7b();
        assert_eq!(p2.kv_dim(), p2.hidden);
    }

    #[test]
    fn sensitivity_ordering_matches_table3() {
        // OPT must be configured as the most outlier-heavy, Falcon least —
        // the knob ordering behind the paper's per-model spread.
        let severity = |p: &ModelProfile| p.act_outlier_rate * p.act_outlier_scale;
        let opt = severity(&ModelProfile::opt_6_7b());
        let falcon = severity(&ModelProfile::falcon_7b());
        let llama2 = severity(&ModelProfile::llama2_7b());
        assert!(opt > llama2 && llama2 > falcon);
    }

    #[test]
    fn seeds_are_distinct() {
        let models = ModelProfile::table3_models();
        for i in 0..models.len() {
            for j in i + 1..models.len() {
                assert_ne!(models[i].seed, models[j].seed);
            }
        }
    }
}
