//! A ready-to-use quantized linear layer — the API a downstream user would
//! deploy: weights held in the packed M2XFP representation, activations
//! quantized on the fly by the (modeled) quantization engine, and the
//! forward pass executed by the bit-exact PE GEMM.

use m2x_tensor::Matrix;
use m2xfp::format::{ActTensor, PackedActTensor, PackedWeightTensor, WeightTensor};
use m2xfp::gemm::{gemm_threads, qgemm, qgemm_packed_planed, WeightPlane};
use m2xfp::M2xfpConfig;
use std::fmt;

/// Error constructing or applying a [`QuantizedLinear`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearError {
    msg: String,
}

impl fmt::Display for LinearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "quantized linear error: {}", self.msg)
    }
}

impl std::error::Error for LinearError {}

/// A linear layer `y = x·Wᵀ` with M2XFP-quantized weights.
///
/// ```
/// use m2x_nn::linear::QuantizedLinear;
/// use m2x_tensor::Matrix;
/// use m2xfp::M2xfpConfig;
///
/// // W: 8 output features, 64 inputs (stored transposed, [out, in]).
/// let w = Matrix::from_fn(8, 64, |r, c| ((r * 64 + c) as f32 * 0.1).sin());
/// let layer = QuantizedLinear::from_weights(&w, M2xfpConfig::default())?;
/// let x = Matrix::from_fn(4, 64, |r, c| ((r + c) as f32 * 0.2).cos());
/// let y = layer.forward(&x)?;
/// assert_eq!((y.rows(), y.cols()), (4, 8));
/// # Ok::<(), m2x_nn::linear::LinearError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLinear {
    /// Weights in the flat three-stream layout — the stored representation;
    /// the grouped form is reconstructed on demand via
    /// [`PackedWeightTensor::to_grouped`].
    packed: PackedWeightTensor,
    /// The streams LUT-decoded once into the GEMM kernel's fixed-point
    /// plane, so repeated [`Self::forward`] calls skip the O(N·K) decode.
    plane: WeightPlane,
    cfg: M2xfpConfig,
}

impl QuantizedLinear {
    /// Quantizes a transposed weight matrix `[out_features, in_features]`.
    ///
    /// # Errors
    ///
    /// Fails when `in_features` is not a multiple of the group size (the
    /// hardware layout requires aligned rows).
    pub fn from_weights(w_t: &Matrix, cfg: M2xfpConfig) -> Result<Self, LinearError> {
        if w_t.cols() % cfg.group_size != 0 {
            return Err(LinearError {
                msg: format!(
                    "in_features {} is not a multiple of the group size {}",
                    w_t.cols(),
                    cfg.group_size
                ),
            });
        }
        // The threaded integer-LUT Sg-EM search — layer construction is the
        // offline weight-quantization moment, the path the paper's §6
        // end-to-end setting exercises per layer.
        let packed = PackedWeightTensor::quantize_parallel(w_t, cfg);
        let plane = WeightPlane::decode(&packed);
        Ok(QuantizedLinear { packed, plane, cfg })
    }

    fn check_width(&self, x: &Matrix) -> Result<(), LinearError> {
        if x.cols() != self.in_features() {
            return Err(LinearError {
                msg: format!(
                    "input width {} does not match in_features {}",
                    x.cols(),
                    self.in_features()
                ),
            });
        }
        Ok(())
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.packed.shape().0
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.packed.shape().1
    }

    /// The grouped weight representation, reconstructed from the packed
    /// streams.
    pub fn weights(&self) -> WeightTensor {
        self.packed.to_grouped()
    }

    /// The three-stream packed weight representation.
    pub fn packed_weights(&self) -> &PackedWeightTensor {
        &self.packed
    }

    /// W4A4 forward pass: quantizes `x` online (Elem-EM-top1) straight into
    /// the packed streams and runs the cache-blocked bit-exact PE GEMM.
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix, LinearError> {
        self.check_width(x)?;
        // Auto-threaded: decode-size batches fall below the work threshold
        // and encode sequentially; large prefill batches fan out.
        let xq = PackedActTensor::quantize_parallel(x, self.cfg);
        let threads = gemm_threads(x.rows(), self.in_features(), self.out_features());
        Ok(qgemm_packed_planed(&xq, &self.plane, threads))
    }

    /// [`Self::forward`] through the legacy grouped pipeline — bit-identical
    /// output, kept for cross-checking the two representations.
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn forward_grouped(&self, x: &Matrix) -> Result<Matrix, LinearError> {
        self.check_width(x)?;
        let xq = ActTensor::quantize(x, self.cfg);
        Ok(qgemm(&xq, &self.weights()))
    }

    /// Forward pass keeping activations in f32 (weight-only quantization,
    /// the W4A16 deployment mode).
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn forward_w4a16(&self, x: &Matrix) -> Result<Matrix, LinearError> {
        self.check_width(x)?;
        Ok(x.matmul(&self.packed.dequantize().transpose()))
    }

    /// Serializes the weights to the paper's three-stream byte layout.
    ///
    /// # Errors
    ///
    /// Propagates the packing layout error.
    pub fn pack_weights(&self) -> Result<Vec<u8>, LinearError> {
        self.weights()
            .pack()
            .map_err(|e| LinearError { msg: e.to_string() })
    }

    /// Storage footprint of the packed weights in bytes.
    pub fn weight_bytes(&self) -> usize {
        let (n, k) = self.packed.shape();
        let groups = n * k / self.cfg.group_size;
        groups * (self.cfg.group_size / 2 + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    fn layer(out: usize, inp: usize, seed: u64) -> (QuantizedLinear, Matrix) {
        let mut r = Xoshiro::seed(seed);
        let w = Matrix::from_fn(out, inp, |_, _| r.laplace(0.5));
        let x = Matrix::from_fn(6, inp, |_, _| r.laplace(1.0));
        (
            QuantizedLinear::from_weights(&w, M2xfpConfig::default()).unwrap(),
            x,
        )
    }

    #[test]
    fn forward_tracks_full_precision() {
        let mut r = Xoshiro::seed(1);
        let w = Matrix::from_fn(16, 128, |_, _| r.laplace(0.5));
        let x = Matrix::from_fn(6, 128, |_, _| r.laplace(1.0));
        let l = QuantizedLinear::from_weights(&w, M2xfpConfig::default()).unwrap();
        let y_ref = x.matmul(&w.transpose());
        let y = l.forward(&x).unwrap();
        let e = nmse(y_ref.as_slice(), y.as_slice());
        assert!(e > 0.0 && e < 0.05, "nmse {e}");
    }

    #[test]
    fn packed_and_grouped_forward_agree_bitwise() {
        let (l, x) = layer(16, 96, 7);
        let packed = l.forward(&x).unwrap();
        let grouped = l.forward_grouped(&x).unwrap();
        for (a, b) in packed.as_slice().iter().zip(grouped.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn w4a16_beats_w4a4() {
        let (l, x) = layer(16, 128, 2);
        let w_deq = l.weights().dequantize();
        let y_ref = x.matmul(&w_deq.transpose());
        // W4A16 equals the dequantized product exactly.
        let y16 = l.forward_w4a16(&x).unwrap();
        assert_eq!(y16, y_ref);
    }

    #[test]
    fn shape_errors_reported() {
        let (l, _) = layer(8, 64, 3);
        let bad = Matrix::zeros(2, 65);
        assert!(l.forward(&bad).is_err());
        assert!(l.forward_w4a16(&bad).is_err());
        let w_bad = Matrix::zeros(8, 65);
        assert!(QuantizedLinear::from_weights(&w_bad, M2xfpConfig::default()).is_err());
    }

    #[test]
    fn weight_footprint_is_4_5_bits() {
        let (l, _) = layer(8, 64, 4);
        let bits = l.weight_bytes() as f64 * 8.0 / (8.0 * 64.0);
        assert!((bits - 4.5).abs() < 1e-12);
        assert_eq!(l.pack_weights().unwrap().len(), l.weight_bytes());
    }

    #[test]
    fn accessors() {
        let (l, _) = layer(8, 64, 5);
        assert_eq!(l.out_features(), 8);
        assert_eq!(l.in_features(), 64);
    }
}
