//! A ready-to-use quantized linear layer — the API a downstream user would
//! deploy: weights held in the packed M2XFP representation, prepared once
//! into the execution backend's form, and every forward pass routed through
//! the [`ExecBackend`](m2xfp::backend::ExecBackend) abstraction.
//!
//! The default backend is [`BackendKind::Packed`] (the LUT/cache-blocked
//! hot path); [`QuantizedLinear::with_backend`] swaps in the grouped or
//! float-oracle engines, whose outputs are bit-identical.

use m2x_tensor::Matrix;
use m2xfp::backend::{BackendKind, PreparedWeights};
use m2xfp::format::{PackedWeightTensor, WeightTensor};
use m2xfp::{Error, M2xfpConfig};

/// Error constructing or applying a [`QuantizedLinear`] — an alias of the
/// engine-wide [`m2xfp::Error`], kept so pre-unification call sites keep
/// compiling.
pub type LinearError = Error;

/// A linear layer `y = x·Wᵀ` with M2XFP-quantized weights.
///
/// ```
/// use m2x_nn::linear::QuantizedLinear;
/// use m2x_tensor::Matrix;
/// use m2xfp::M2xfpConfig;
///
/// // W: 8 output features, 64 inputs (stored transposed, [out, in]).
/// let w = Matrix::from_fn(8, 64, |r, c| ((r * 64 + c) as f32 * 0.1).sin());
/// let layer = QuantizedLinear::from_weights(&w, M2xfpConfig::default())?;
/// let x = Matrix::from_fn(4, 64, |r, c| ((r + c) as f32 * 0.2).cos());
/// let y = layer.forward(&x)?;
/// assert_eq!((y.rows(), y.cols()), (4, 8));
/// # Ok::<(), m2xfp::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLinear {
    /// Weights prepared for the chosen backend: the canonical three-stream
    /// bits plus the backend's decoded execution form (e.g. the GEMM
    /// kernel's fixed-point plane), so repeated [`Self::forward`] calls
    /// skip the O(N·K) decode.
    prepared: PreparedWeights,
    backend: BackendKind,
}

impl QuantizedLinear {
    /// Quantizes a transposed weight matrix `[out_features, in_features]`
    /// for the production [`BackendKind::Packed`] engine.
    ///
    /// # Errors
    ///
    /// Fails when `in_features` is not a multiple of the group size (the
    /// hardware layout requires aligned rows).
    pub fn from_weights(w_t: &Matrix, cfg: M2xfpConfig) -> Result<Self, Error> {
        Self::with_backend(w_t, cfg, BackendKind::Packed)
    }

    /// [`Self::from_weights`] on an explicit execution backend. All
    /// backends produce bit-identical forwards from the same weights.
    ///
    /// # Errors
    ///
    /// Fails when `in_features` is not a multiple of the group size.
    pub fn with_backend(
        w_t: &Matrix,
        cfg: M2xfpConfig,
        backend: BackendKind,
    ) -> Result<Self, Error> {
        if w_t.cols() % cfg.group_size != 0 {
            return Err(Error::Misaligned {
                tensor: "linear weights".to_string(),
                len: w_t.cols(),
                group_size: cfg.group_size,
            });
        }
        // The threaded integer-LUT Sg-EM search — layer construction is the
        // offline weight-quantization moment, the path the paper's §6
        // end-to-end setting exercises per layer — followed by the
        // backend's one-time decode into its execution form.
        let packed = PackedWeightTensor::quantize_parallel(w_t, cfg);
        let prepared = backend.backend().prepare(packed);
        Ok(QuantizedLinear { prepared, backend })
    }

    fn check_width(&self, x: &Matrix) -> Result<(), Error> {
        if x.cols() != self.in_features() {
            return Err(Error::WidthMismatch {
                tensor: "quantized linear".to_string(),
                expected: self.in_features(),
                got: x.cols(),
            });
        }
        Ok(())
    }

    /// The execution backend this layer runs on.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The configuration the weights were quantized with.
    pub fn config(&self) -> &M2xfpConfig {
        self.prepared.config()
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.prepared.shape().0
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.prepared.shape().1
    }

    /// The grouped weight representation, reconstructed from the packed
    /// streams.
    pub fn weights(&self) -> WeightTensor {
        self.prepared.packed().to_grouped()
    }

    /// The three-stream packed weight representation.
    pub fn packed_weights(&self) -> &PackedWeightTensor {
        self.prepared.packed()
    }

    /// W4A4 forward pass through the layer's backend: quantizes `x` online
    /// (Elem-EM-top1) and runs the bit-exact PE GEMM against the prepared
    /// weights.
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix, Error> {
        self.backend.backend().forward(x, &self.prepared)
    }

    /// [`Self::forward`] with a caller-held reusable
    /// [`GemmScratch`](m2xfp::gemm::GemmScratch) — the decode hot-loop
    /// entry point: single-row inputs take the packed backend's GEMV fast
    /// path and the activation scratch is reused across calls instead of
    /// allocated fresh. Bit-identical to [`Self::forward`].
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn forward_scratch(
        &self,
        x: &Matrix,
        scratch: &mut m2xfp::gemm::GemmScratch,
    ) -> Result<Matrix, Error> {
        self.backend
            .backend()
            .forward_scratch(x, &self.prepared, scratch)
    }

    /// [`Self::forward`] through the legacy grouped pipeline — bit-identical
    /// output, kept for cross-checking the representations without
    /// rebuilding the layer on another backend.
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn forward_grouped(&self, x: &Matrix) -> Result<Matrix, Error> {
        let be = BackendKind::Grouped.backend();
        be.forward(x, &be.prepare(self.prepared.packed().clone()))
    }

    /// Forward pass keeping activations in f32 (weight-only quantization,
    /// the W4A16 deployment mode).
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn forward_w4a16(&self, x: &Matrix) -> Result<Matrix, Error> {
        self.check_width(x)?;
        Ok(x.matmul(&self.prepared.packed().dequantize().transpose()))
    }

    /// Serializes the weights to the paper's three-stream byte layout.
    ///
    /// # Errors
    ///
    /// Propagates the packing layout error.
    pub fn pack_weights(&self) -> Result<Vec<u8>, Error> {
        self.weights().pack()
    }

    /// Storage footprint of the packed weights in bytes.
    pub fn weight_bytes(&self) -> usize {
        let (n, k) = self.prepared.shape();
        let cfg = self.config();
        let groups = n * k / cfg.group_size;
        groups * (cfg.group_size / 2 + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    fn layer(out: usize, inp: usize, seed: u64) -> (QuantizedLinear, Matrix) {
        let mut r = Xoshiro::seed(seed);
        let w = Matrix::from_fn(out, inp, |_, _| r.laplace(0.5));
        let x = Matrix::from_fn(6, inp, |_, _| r.laplace(1.0));
        (
            QuantizedLinear::from_weights(&w, M2xfpConfig::default()).unwrap(),
            x,
        )
    }

    #[test]
    fn forward_tracks_full_precision() {
        let mut r = Xoshiro::seed(1);
        let w = Matrix::from_fn(16, 128, |_, _| r.laplace(0.5));
        let x = Matrix::from_fn(6, 128, |_, _| r.laplace(1.0));
        let l = QuantizedLinear::from_weights(&w, M2xfpConfig::default()).unwrap();
        let y_ref = x.matmul(&w.transpose());
        let y = l.forward(&x).unwrap();
        let e = nmse(y_ref.as_slice(), y.as_slice());
        assert!(e > 0.0 && e < 0.05, "nmse {e}");
    }

    #[test]
    fn packed_and_grouped_forward_agree_bitwise() {
        let (l, x) = layer(16, 96, 7);
        let packed = l.forward(&x).unwrap();
        let grouped = l.forward_grouped(&x).unwrap();
        for (a, b) in packed.as_slice().iter().zip(grouped.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_backend_layer_is_bit_identical() {
        let mut r = Xoshiro::seed(11);
        let w = Matrix::from_fn(12, 64, |_, _| r.laplace(0.5));
        let x = Matrix::from_fn(5, 64, |_, _| r.laplace(1.0));
        let cfg = M2xfpConfig::default();
        let outs: Vec<Matrix> = BackendKind::ALL
            .iter()
            .map(|&k| {
                let l = QuantizedLinear::with_backend(&w, cfg, k).unwrap();
                assert_eq!(l.backend(), k);
                l.forward(&x).unwrap()
            })
            .collect();
        for o in &outs[1..] {
            for (a, b) in outs[0].as_slice().iter().zip(o.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn w4a16_beats_w4a4() {
        let (l, x) = layer(16, 128, 2);
        let w_deq = l.weights().dequantize();
        let y_ref = x.matmul(&w_deq.transpose());
        // W4A16 equals the dequantized product exactly.
        let y16 = l.forward_w4a16(&x).unwrap();
        assert_eq!(y16, y_ref);
    }

    #[test]
    fn shape_errors_reported() {
        let (l, _) = layer(8, 64, 3);
        let bad = Matrix::zeros(2, 65);
        assert!(l.forward(&bad).is_err());
        assert!(l.forward_w4a16(&bad).is_err());
        let w_bad = Matrix::zeros(8, 65);
        let err = QuantizedLinear::from_weights(&w_bad, M2xfpConfig::default()).unwrap_err();
        assert!(err.to_string().contains("linear weights"), "{err}");
    }

    #[test]
    fn weight_footprint_is_4_5_bits() {
        let (l, _) = layer(8, 64, 4);
        let bits = l.weight_bytes() as f64 * 8.0 / (8.0 * 64.0);
        assert!((bits - 4.5).abs() < 1e-12);
        assert_eq!(l.pack_weights().unwrap().len(), l.weight_bytes());
    }

    #[test]
    fn accessors() {
        let (l, _) = layer(8, 64, 5);
        assert_eq!(l.out_features(), 8);
        assert_eq!(l.in_features(), 64);
        assert_eq!(l.backend(), BackendKind::Packed);
    }
}
