//! Seeded synthesis of LLM-like weight and activation tensors.
//!
//! Weights: Laplace body with per-output-channel lognormal scale spread —
//! the standard empirical model of trained transformer weights. Activations:
//! Student-t body (heavy tails) with a sparse set of *outlier channels*
//! whose magnitude is tens of times the body, the signature distribution
//! that breaks shared-scale quantization in LLMs (paper §3.1).

use crate::profile::ModelProfile;
use m2x_tensor::{Matrix, Xoshiro};

/// Which linear layer a weight tensor belongs to (affects the RNG stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Query projection.
    Q,
    /// Key projection.
    K,
    /// Value projection.
    V,
    /// Output projection.
    O,
    /// MLP gate (gated MLPs only).
    Gate,
    /// MLP up projection.
    Up,
    /// MLP down projection.
    Down,
}

impl LayerKind {
    fn salt(self) -> u64 {
        match self {
            LayerKind::Q => 1,
            LayerKind::K => 2,
            LayerKind::V => 3,
            LayerKind::O => 4,
            LayerKind::Gate => 5,
            LayerKind::Up => 6,
            LayerKind::Down => 7,
        }
    }
}

/// Synthesizes a transposed weight matrix `[out, in]` for a layer.
///
/// Rows (output channels) get individual lognormal scales; entries are
/// Laplace. Deterministic in `(profile.seed, kind, layer_idx)`.
pub fn weight_matrix(
    profile: &ModelProfile,
    kind: LayerKind,
    layer_idx: usize,
    out_dim: usize,
    in_dim: usize,
) -> Matrix {
    let mut root = Xoshiro::seed(
        profile
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(kind.salt() * 1000 + layer_idx as u64),
    );
    let mut rows = Vec::with_capacity(out_dim * in_dim);
    for _ in 0..out_dim {
        let ch_scale = root.lognormal(0.0, profile.weight_channel_spread);
        for _ in 0..in_dim {
            rows.push(root.laplace(profile.weight_b) * ch_scale);
        }
    }
    Matrix::from_vec(out_dim, in_dim, rows)
}

/// The outlier-channel set of a model's residual stream (fixed per model,
/// as in real LLMs where outlier channels persist across tokens). Roughly
/// half the outlier channels come with an *adjacent* partner — the
/// neighboring-outlier phenomenon MicroScopiQ documents in LLMs, which is
/// what breaks pair-aligned outlier–victim encodings group-wise.
pub fn outlier_channels(profile: &ModelProfile, dim: usize) -> Vec<usize> {
    let mut r = Xoshiro::seed(profile.seed ^ 0x0u64.wrapping_sub(0x0DDC_0DE5));
    let count = ((dim as f32) * profile.act_outlier_rate).round().max(1.0) as usize;
    let perm = r.permutation(dim);
    let mut out: Vec<usize> = Vec::with_capacity(count);
    let mut i = 0;
    while out.len() < count && i < perm.len() {
        let c = perm[i];
        if !out.contains(&c) {
            out.push(c);
            if out.len() < count && r.chance(0.5) {
                let partner = c + 1;
                if partner < dim && !out.contains(&partner) {
                    out.push(partner);
                }
            }
        }
        i += 1;
    }
    out
}

/// Synthesizes an activation matrix `[tokens, dim]`.
///
/// Per token, channels mix a shared low-rank component (activations of
/// real transformers are strongly correlated — features co-activate, which
/// is what Hessian-based schemes like GPTQ exploit) with heavy-tailed
/// Student-t noise; outlier channels are scaled by `act_outlier_scale`.
/// Deterministic in `(profile.seed, layer_idx)`; for a fixed layer, the
/// first `t` rows of a longer matrix equal the `t`-row matrix, so held-out
/// calibration data can be carved from the same stream.
pub fn activation_matrix(
    profile: &ModelProfile,
    layer_idx: usize,
    tokens: usize,
    dim: usize,
) -> Matrix {
    let outliers = outlier_channels(profile, dim);
    let mut is_outlier = vec![false; dim];
    for &c in &outliers {
        is_outlier[c] = true;
    }
    let mut r = Xoshiro::seed(
        profile
            .seed
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .wrapping_add(layer_idx as u64),
    );
    // Per-channel base scales: mild lognormal spread.
    let ch_scale: Vec<f32> = (0..dim)
        .map(|c| {
            let base = r.lognormal(0.0, 0.3);
            if is_outlier[c] {
                base * profile.act_outlier_scale
            } else {
                base
            }
        })
        .collect();
    // Fixed low-rank mixing basis for this (model, layer).
    let rank = (dim / 8).max(4);
    let basis: Vec<f32> = r.vec_of(rank * dim, |r| r.gaussian() / (rank as f32).sqrt());

    let nu = profile.act_student_nu;
    let mut data = Vec::with_capacity(tokens * dim);
    let mut z = vec![0.0f32; rank];
    for _ in 0..tokens {
        for zj in z.iter_mut() {
            *zj = r.gaussian();
        }
        for c in 0..dim {
            let mut shared = 0.0f32;
            for (j, &zj) in z.iter().enumerate() {
                shared += zj * basis[j * dim + c];
            }
            let v = 0.8 * shared + 0.6 * r.student_t(nu);
            data.push(v * ch_scale[c]);
        }
    }
    Matrix::from_vec(tokens, dim, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::{abs_quantile, excess_kurtosis};

    #[test]
    fn weights_deterministic() {
        let p = ModelProfile::llama2_7b();
        let a = weight_matrix(&p, LayerKind::Q, 3, 64, 128);
        let b = weight_matrix(&p, LayerKind::Q, 3, 64, 128);
        assert_eq!(a, b);
        let c = weight_matrix(&p, LayerKind::K, 3, 64, 128);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_heavy_tailed() {
        let p = ModelProfile::llama2_7b();
        let w = weight_matrix(&p, LayerKind::Up, 0, 128, 256);
        // Laplace × lognormal channel scales: clearly super-Gaussian.
        assert!(excess_kurtosis(w.as_slice()) > 1.0);
    }

    #[test]
    fn activations_have_outlier_channels() {
        let p = ModelProfile::opt_6_7b();
        let dim = 512;
        let x = activation_matrix(&p, 0, 64, dim);
        let outliers = outlier_channels(&p, dim);
        assert!(!outliers.is_empty());
        // Outlier channels dominate: their median |x| exceeds the overall
        // 99th percentile of the body.
        let body_q99 = abs_quantile(x.as_slice(), 0.99);
        let oc = outliers[0];
        let col: Vec<f32> = (0..x.rows()).map(|r| x[(r, oc)]).collect();
        let med = abs_quantile(&col, 0.5);
        assert!(
            med > body_q99 * 0.5,
            "outlier channel median {med} vs body q99 {body_q99}"
        );
    }

    #[test]
    fn outlier_channel_count_scales_with_rate() {
        let opt = ModelProfile::opt_6_7b();
        let falcon = ModelProfile::falcon_7b();
        assert!(outlier_channels(&opt, 1024).len() > outlier_channels(&falcon, 1024).len());
    }

    #[test]
    fn opt_harder_to_quantize_than_falcon() {
        // The knob ordering must translate into measured 4-bit damage to the
        // *body* channels (outlier channels inflate raw NMSE's numerator and
        // denominator alike, so we measure body error against body energy —
        // the §3.1 failure mode: the block max destroys its neighbors).
        use m2xfp::TensorQuantizer;
        let q = m2x_baselines::MxQuantizer::mxfp4();
        let body_err = |p: &ModelProfile| {
            let dim = 512;
            let x = activation_matrix(p, 0, 48, dim);
            let xq = q.quantize_activations(&x);
            let outliers = outlier_channels(p, dim);
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for r in 0..x.rows() {
                for c in 0..dim {
                    if outliers.contains(&c) {
                        continue;
                    }
                    let d = (x[(r, c)] - xq[(r, c)]) as f64;
                    num += d * d;
                    den += (x[(r, c)] as f64).powi(2);
                }
            }
            num / den
        };
        let e_opt = body_err(&ModelProfile::opt_6_7b());
        let e_falcon = body_err(&ModelProfile::falcon_7b());
        assert!(
            e_opt > 2.0 * e_falcon,
            "opt body error {e_opt} should far exceed falcon {e_falcon}"
        );
    }
}
