//! The transformer GEMM inventory — shared by the nn error propagation and
//! the accelerator timing model (Fig. 13 runs per-model layer schedules).

use crate::profile::{MlpKind, ModelProfile};
use crate::synth::LayerKind;

/// One GEMM in a transformer layer: `[m × k] · [k × n]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmShape {
    /// Operation name (`q_proj`, `mlp_up`, `attn_qk`, ...).
    pub name: String,
    /// Rows of the activation operand (tokens).
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output width.
    pub n: usize,
}

impl GemmShape {
    /// Multiply–accumulate count.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }
}

/// The linear-layer GEMMs of one transformer block at sequence length
/// `seq` (projection GEMMs only; attention score/value GEMMs are listed by
/// [`attention_gemms`]).
pub fn linear_gemms(p: &ModelProfile, seq: usize) -> Vec<GemmShape> {
    let h = p.hidden;
    let kv = p.kv_dim();
    let mut v = vec![
        GemmShape {
            name: "q_proj".into(),
            m: seq,
            k: h,
            n: h,
        },
        GemmShape {
            name: "k_proj".into(),
            m: seq,
            k: h,
            n: kv,
        },
        GemmShape {
            name: "v_proj".into(),
            m: seq,
            k: h,
            n: kv,
        },
        GemmShape {
            name: "o_proj".into(),
            m: seq,
            k: h,
            n: h,
        },
    ];
    match p.mlp {
        MlpKind::Gated => {
            v.push(GemmShape {
                name: "mlp_gate".into(),
                m: seq,
                k: h,
                n: p.intermediate,
            });
            v.push(GemmShape {
                name: "mlp_up".into(),
                m: seq,
                k: h,
                n: p.intermediate,
            });
            v.push(GemmShape {
                name: "mlp_down".into(),
                m: seq,
                k: p.intermediate,
                n: h,
            });
        }
        MlpKind::Plain => {
            v.push(GemmShape {
                name: "mlp_up".into(),
                m: seq,
                k: h,
                n: p.intermediate,
            });
            v.push(GemmShape {
                name: "mlp_down".into(),
                m: seq,
                k: p.intermediate,
                n: h,
            });
        }
    }
    v
}

/// Attention GEMMs (`Q·Kᵀ` and `P·V`) of one block at sequence length
/// `seq` — the §6.4 KV-cache extension targets these.
pub fn attention_gemms(p: &ModelProfile, seq: usize) -> Vec<GemmShape> {
    let hd = p.head_dim();
    // Per head: scores [seq × hd]·[hd × seq], values [seq × seq]·[seq × hd].
    vec![
        GemmShape {
            name: "attn_qk".into(),
            m: seq * p.heads,
            k: hd,
            n: seq,
        },
        GemmShape {
            name: "attn_pv".into(),
            m: seq * p.heads,
            k: seq,
            n: hd,
        },
    ]
}

/// The weight `LayerKind` feeding each projection GEMM (attention GEMMs
/// have no static weights).
pub fn weight_kind(name: &str) -> Option<LayerKind> {
    match name {
        "q_proj" => Some(LayerKind::Q),
        "k_proj" => Some(LayerKind::K),
        "v_proj" => Some(LayerKind::V),
        "o_proj" => Some(LayerKind::O),
        "mlp_gate" => Some(LayerKind::Gate),
        "mlp_up" => Some(LayerKind::Up),
        "mlp_down" => Some(LayerKind::Down),
        _ => None,
    }
}

/// Fraction of per-block MACs spent in linear layers vs attention at a
/// given sequence length — reproduces the §6.4 observation that linear
/// layers dominate (~83 %) at 4096 but attention approaches half at 16384.
pub fn linear_macs_fraction(p: &ModelProfile, seq: usize) -> f64 {
    let lin: u64 = linear_gemms(p, seq).iter().map(|g| g.macs()).sum();
    let attn: u64 = attention_gemms(p, seq).iter().map(|g| g.macs()).sum();
    lin as f64 / (lin + attn) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gated_models_have_seven_linear_gemms() {
        let p = ModelProfile::llama3_8b();
        assert_eq!(linear_gemms(&p, 128).len(), 7);
        let p2 = ModelProfile::opt_6_7b();
        assert_eq!(linear_gemms(&p2, 128).len(), 6);
    }

    #[test]
    fn gqa_shrinks_kv_projections() {
        let p = ModelProfile::llama3_8b();
        let gemms = linear_gemms(&p, 64);
        let k = gemms.iter().find(|g| g.name == "k_proj").unwrap();
        let q = gemms.iter().find(|g| g.name == "q_proj").unwrap();
        assert_eq!(k.n, 1024);
        assert_eq!(q.n, 4096);
    }

    #[test]
    fn linear_fraction_matches_paper_cited_numbers() {
        // §6.4: linear ≈ 83 % at seq 4096; attention ≈ 45 % at 16384.
        let p = ModelProfile::llama3_8b();
        let f4096 = linear_macs_fraction(&p, 4096);
        assert!((0.74..0.92).contains(&f4096), "got {f4096}");
        let f16384 = linear_macs_fraction(&p, 16384);
        let attn_frac = 1.0 - f16384;
        assert!((0.35..0.60).contains(&attn_frac), "got {attn_frac}");
    }

    #[test]
    fn weight_kinds_cover_linear_gemms() {
        let p = ModelProfile::mistral_7b();
        for g in linear_gemms(&p, 16) {
            assert!(weight_kind(&g.name).is_some(), "{}", g.name);
        }
        assert!(weight_kind("attn_qk").is_none());
    }

    #[test]
    fn macs_computation() {
        let g = GemmShape {
            name: "t".into(),
            m: 2,
            k: 3,
            n: 5,
        };
        assert_eq!(g.macs(), 30);
    }
}
