//! Model-level quantized inference — the §6 end-to-end setting as an API.
//!
//! [`ModelBuilder`] takes a [`ModelProfile`] + [`M2xfpConfig`], synthesizes
//! every linear weight of a transformer stack (deterministic, from the
//! profile's seed), quantizes each through the threaded integer-LUT Sg-EM
//! search (`PackedWeightTensor::quantize_parallel`, via
//! [`QuantizedLinear`]) and prepares it once for the chosen execution
//! backend. The resulting [`QuantizedModel`] is a stateful inference
//! session:
//!
//! * [`QuantizedModel::forward_batch`] — reset the KV cache and run a full
//!   causal batch (the throughput surface the `e2e_model` driver times);
//! * [`QuantizedModel::prefill`] / [`QuantizedModel::decode`] — the
//!   serving loop: append tokens to the per-layer [`KvCache`] and return
//!   their outputs. Prefill-then-decode is **bit-identical** to the
//!   one-shot batch (rows quantize independently and every kernel computes
//!   each output element in the same order), which the workspace property
//!   tests pin.
//!
//! Attention follows the paper's §6.4 hybrid: K is cached in the packed
//! Sg-EM weight representation (grown incrementally with
//! `PackedWeightTensor::append_rows`) and consumed by the backend's
//! quantized score GEMM; V rows are Sg-EM-quantized per token and
//! dequantized at use; Q and the probability matrix P run the online
//! Elem-EM path. Everything quantized routes through one
//! [`ExecBackend`](m2xfp::backend::ExecBackend), so the whole model is
//! bit-identical across the packed, grouped and reference engines.

use crate::linear::QuantizedLinear;
use crate::profile::{MlpKind, ModelProfile};
use crate::synth::{weight_matrix, LayerKind};
use m2x_tensor::Matrix;
use m2xfp::backend::BackendKind;
use m2xfp::format::PackedWeightTensor;
use m2xfp::{Error, M2xfpConfig};

/// Row-wise RMS normalization (unit gain): keeps the residual stream's
/// scale bounded across layers so deep stacks stay in the formats' dynamic
/// range. Purely per-row, so batch and decode paths compute identical bits.
fn rms_norm(m: &Matrix) -> Matrix {
    let n = m.cols() as f64;
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let ss: f64 = row.iter().map(|&v| v as f64 * v as f64).sum();
        let inv = (1.0 / (ss / n + 1e-6).sqrt()) as f32;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// SiLU (x·σ(x)) applied element-wise — the gated-MLP activation.
fn silu(m: &Matrix) -> Matrix {
    m.map(|v| v / (1.0 + (-v).exp()))
}

/// ReLU applied element-wise — the plain-MLP activation.
fn relu(m: &Matrix) -> Matrix {
    m.map(|v| v.max(0.0))
}

/// Copies `width` columns starting at `start` out of `m`.
fn slice_cols(m: &Matrix, start: usize, width: usize) -> Matrix {
    Matrix::from_fn(m.rows(), width, |r, c| m[(r, start + c)])
}

/// Writes `src` into `out` at column offset `start`.
fn write_cols(out: &mut Matrix, src: &Matrix, start: usize) {
    for r in 0..src.rows() {
        let (orow, srow) = (out.row_mut(r), src.row(r));
        orow[start..start + srow.len()].copy_from_slice(srow);
    }
}

/// One transformer block's quantized projections.
#[derive(Debug, Clone)]
struct Block {
    q: QuantizedLinear,
    k: QuantizedLinear,
    v: QuantizedLinear,
    o: QuantizedLinear,
    /// `Some` for gated (SwiGLU) MLPs, `None` for plain two-matrix MLPs.
    gate: Option<QuantizedLinear>,
    up: QuantizedLinear,
    down: QuantizedLinear,
}

/// One block's f32 weights (transposed `[out, in]`), kept when the builder
/// is asked for the full-precision oracle path.
#[derive(Debug, Clone)]
struct RefBlock {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    o: Matrix,
    gate: Option<Matrix>,
    up: Matrix,
    down: Matrix,
}

/// One layer's quantized KV cache: per KV head, K rows in the packed Sg-EM
/// weight representation (the backend's score-GEMM operand) and V rows
/// likewise quantized per token along the head dimension. Each appended
/// token quantizes independently, so incremental growth is byte-identical
/// to quantizing the full sequence at once.
#[derive(Debug, Clone)]
pub struct KvCache {
    k: Vec<PackedWeightTensor>,
    v: Vec<PackedWeightTensor>,
}

impl KvCache {
    fn new(kv_heads: usize, head_dim: usize, cfg: M2xfpConfig) -> Self {
        KvCache {
            k: (0..kv_heads)
                .map(|_| PackedWeightTensor::empty(head_dim, cfg))
                .collect(),
            v: (0..kv_heads)
                .map(|_| PackedWeightTensor::empty(head_dim, cfg))
                .collect(),
        }
    }

    /// Quantizes and appends new K/V projection rows (`[tokens, kv_dim]`),
    /// sliced per KV head.
    fn append(&mut self, k_new: &Matrix, v_new: &Matrix, head_dim: usize) -> Result<(), Error> {
        for (h, (kc, vc)) in self.k.iter_mut().zip(&mut self.v).enumerate() {
            kc.append_rows(&slice_cols(k_new, h * head_dim, head_dim))?;
            vc.append_rows(&slice_cols(v_new, h * head_dim, head_dim))?;
        }
        Ok(())
    }

    /// Cached sequence length in tokens.
    pub fn seq_len(&self) -> usize {
        self.k.first().map_or(0, |t| t.shape().0)
    }

    /// Total packed footprint of the cached K and V streams in bytes.
    pub fn bytes(&self) -> usize {
        self.k.iter().chain(&self.v).map(|t| t.packed_bytes()).sum()
    }

    fn clear(&mut self, head_dim: usize, cfg: M2xfpConfig) {
        for t in self.k.iter_mut().chain(&mut self.v) {
            *t = PackedWeightTensor::empty(head_dim, cfg);
        }
    }
}

/// Builder for a [`QuantizedModel`]: a [`ModelProfile`] supplies the
/// architecture shape and weight statistics, an [`M2xfpConfig`] the format,
/// and a [`BackendKind`] the execution engine. Dimensions can be overridden
/// (or bulk-scaled with [`ModelBuilder::scaled`]) so tests and CI drive the
/// same code at toy sizes.
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    profile: ModelProfile,
    cfg: M2xfpConfig,
    backend: BackendKind,
    hidden: usize,
    intermediate: usize,
    heads: usize,
    kv_heads: usize,
    layers: usize,
    keep_reference: bool,
}

impl ModelBuilder {
    /// A builder with the profile's real architecture dimensions.
    pub fn new(profile: &ModelProfile) -> Self {
        ModelBuilder {
            cfg: M2xfpConfig::default(),
            backend: BackendKind::Packed,
            hidden: profile.hidden,
            intermediate: profile.intermediate,
            heads: profile.heads,
            kv_heads: profile.kv_heads,
            layers: profile.layers,
            keep_reference: false,
            profile: profile.clone(),
        }
    }

    /// A builder scaled down to `hidden` × `layers`, preserving the
    /// profile's head width (64 where it divides `hidden`), GQA ratio and
    /// MLP expansion factor, rounded to group-aligned dimensions.
    pub fn scaled(profile: &ModelProfile, hidden: usize, layers: usize) -> Self {
        let head_dim = if hidden % 64 == 0 { 64 } else { 32 };
        let heads = (hidden / head_dim).max(1);
        let ratio = (profile.heads / profile.kv_heads).max(1);
        let mut kv_heads = (heads / ratio).max(1);
        while heads % kv_heads != 0 {
            kv_heads -= 1;
        }
        let expand = profile.intermediate as f64 / profile.hidden as f64;
        let intermediate = (((hidden as f64 * expand) / 32.0).round() as usize).max(1) * 32;
        ModelBuilder {
            hidden,
            intermediate,
            heads,
            kv_heads,
            layers,
            ..Self::new(profile)
        }
    }

    /// Sets the quantization configuration.
    pub fn config(mut self, cfg: M2xfpConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the execution backend (default [`BackendKind::Packed`]).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the transformer layer count.
    pub fn layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Overrides the hidden dimension.
    pub fn hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Overrides the MLP intermediate dimension.
    pub fn intermediate(mut self, intermediate: usize) -> Self {
        self.intermediate = intermediate;
        self
    }

    /// Overrides the attention head counts.
    pub fn heads(mut self, heads: usize, kv_heads: usize) -> Self {
        self.heads = heads;
        self.kv_heads = kv_heads;
        self
    }

    /// Keeps the f32 weights alongside the quantized model so
    /// [`QuantizedModel::reference_forward_batch`] (the NRMSE oracle) is
    /// available. Costs one full-precision copy of every weight.
    pub fn keep_reference(mut self, keep: bool) -> Self {
        self.keep_reference = keep;
        self
    }

    fn validate(&self) -> Result<(), Error> {
        let gs = self.cfg.group_size;
        let bad = |msg: String| Err(Error::config(msg));
        if self.layers == 0 {
            return bad("layers must be >= 1".into());
        }
        if self.heads == 0 || self.kv_heads == 0 || self.heads % self.kv_heads != 0 {
            return bad(format!(
                "heads {} must be a positive multiple of kv_heads {}",
                self.heads, self.kv_heads
            ));
        }
        if self.hidden % self.heads != 0 {
            return bad(format!(
                "hidden {} must divide into heads {}",
                self.hidden, self.heads
            ));
        }
        let head_dim = self.hidden / self.heads;
        for (name, dim) in [
            ("hidden", self.hidden),
            ("intermediate", self.intermediate),
            ("head_dim", head_dim),
        ] {
            if dim == 0 || dim % gs != 0 {
                return bad(format!(
                    "{name} {dim} must be a positive multiple of the group size {gs}"
                ));
            }
        }
        Ok(())
    }

    /// Synthesizes, quantizes and prepares every layer.
    ///
    /// # Errors
    ///
    /// Fails on inconsistent or group-misaligned dimensions; the message
    /// names the offending field or layer.
    pub fn build(self) -> Result<QuantizedModel, Error> {
        self.validate()?;
        let (h, inter) = (self.hidden, self.intermediate);
        let head_dim = h / self.heads;
        let kv_dim = self.kv_heads * head_dim;
        let gated = self.profile.mlp == MlpKind::Gated;

        let mut blocks = Vec::with_capacity(self.layers);
        let mut reference = self.keep_reference.then(Vec::new);
        for l in 0..self.layers {
            let synth = |kind: LayerKind, n: usize, k: usize| -> Matrix {
                weight_matrix(&self.profile, kind, l, n, k)
            };
            let quant = |w: &Matrix, name: &str| -> Result<QuantizedLinear, Error> {
                QuantizedLinear::with_backend(w, self.cfg, self.backend)
                    .map_err(|e| e.for_tensor(format!("layer {l} {name}")))
            };
            let wq = synth(LayerKind::Q, h, h);
            let wk = synth(LayerKind::K, kv_dim, h);
            let wv = synth(LayerKind::V, kv_dim, h);
            let wo = synth(LayerKind::O, h, h);
            let wgate = gated.then(|| synth(LayerKind::Gate, inter, h));
            let wup = synth(LayerKind::Up, inter, h);
            let wdown = synth(LayerKind::Down, h, inter);
            blocks.push(Block {
                q: quant(&wq, "q_proj")?,
                k: quant(&wk, "k_proj")?,
                v: quant(&wv, "v_proj")?,
                o: quant(&wo, "o_proj")?,
                gate: wgate.as_ref().map(|w| quant(w, "mlp_gate")).transpose()?,
                up: quant(&wup, "mlp_up")?,
                down: quant(&wdown, "mlp_down")?,
            });
            if let Some(r) = reference.as_mut() {
                r.push(RefBlock {
                    q: wq,
                    k: wk,
                    v: wv,
                    o: wo,
                    gate: wgate,
                    up: wup,
                    down: wdown,
                });
            }
        }

        let kv = (0..self.layers)
            .map(|_| KvCache::new(self.kv_heads, head_dim, self.cfg))
            .collect();
        Ok(QuantizedModel {
            name: self.profile.name.to_string(),
            cfg: self.cfg,
            backend: self.backend,
            mlp: self.profile.mlp,
            hidden: h,
            intermediate: inter,
            heads: self.heads,
            kv_heads: self.kv_heads,
            head_dim,
            blocks,
            kv,
            pos: 0,
            reference,
        })
    }
}

/// A whole transformer stack quantized to M2XFP: every projection held in
/// the packed three-stream representation, prepared once for one execution
/// backend, plus a per-layer quantized [`KvCache`]. See the
/// [module docs](self) for the session API.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    name: String,
    cfg: M2xfpConfig,
    backend: BackendKind,
    mlp: MlpKind,
    hidden: usize,
    intermediate: usize,
    heads: usize,
    kv_heads: usize,
    head_dim: usize,
    blocks: Vec<Block>,
    kv: Vec<KvCache>,
    pos: usize,
    reference: Option<Vec<RefBlock>>,
}

impl QuantizedModel {
    /// Profile name the model was synthesized from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The quantization configuration.
    pub fn config(&self) -> &M2xfpConfig {
        &self.cfg
    }

    /// The execution backend every forward routes through.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Hidden (residual stream) dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// MLP intermediate dimension.
    pub fn intermediate(&self) -> usize {
        self.intermediate
    }

    /// Transformer layer count.
    pub fn layer_count(&self) -> usize {
        self.blocks.len()
    }

    /// Attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// KV heads (GQA when < heads).
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// Width of one attention head.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Tokens currently held in the KV cache.
    pub fn seq_len(&self) -> usize {
        self.pos
    }

    /// Per-layer KV caches (index = layer).
    pub fn kv_caches(&self) -> &[KvCache] {
        &self.kv
    }

    /// Total packed weight footprint across all layers, in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                [Some(&b.q), Some(&b.k), Some(&b.v), Some(&b.o)]
                    .into_iter()
                    .chain([b.gate.as_ref(), Some(&b.up), Some(&b.down)])
                    .flatten()
                    .map(QuantizedLinear::weight_bytes)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Multiply–accumulate count of one forward over `tokens` tokens
    /// starting at cache position `start_pos` (linear projections plus the
    /// per-head score/value GEMMs against the grown cache).
    pub fn forward_macs(&self, tokens: usize, start_pos: usize) -> u64 {
        let (t, h) = (tokens as u64, self.hidden as u64);
        let inter = self.intermediate as u64;
        let kv_dim = (self.kv_heads * self.head_dim) as u64;
        let s = (start_pos + tokens) as u64;
        let linear = t * h * h * 2 // q, o
            + t * h * kv_dim * 2 // k, v
            + match self.mlp {
                MlpKind::Gated => 3 * t * h * inter,
                MlpKind::Plain => 2 * t * h * inter,
            };
        let attn = self.heads as u64 * 2 * t * s * self.head_dim as u64;
        (linear + attn) * self.blocks.len() as u64
    }

    /// Drops the KV cache and resets the stream position to zero.
    pub fn reset(&mut self) {
        for c in &mut self.kv {
            c.clear(self.head_dim, self.cfg);
        }
        self.pos = 0;
    }

    /// One-shot causal forward over a full batch of token embeddings
    /// `[tokens, hidden]`: resets the session, then prefills. Bit-identical
    /// to any prefill/decode split of the same rows.
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn forward_batch(&mut self, x: &Matrix) -> Result<Matrix, Error> {
        self.reset();
        self.step(x, None)
    }

    /// Appends a chunk of tokens `[tokens, hidden]` to the session and
    /// returns their outputs (causal within the chunk and against the
    /// cache).
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn prefill(&mut self, x: &Matrix) -> Result<Matrix, Error> {
        self.step(x, None)
    }

    /// Appends exactly one token `[1, hidden]` — the serving decode step.
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch or a multi-row input.
    pub fn decode(&mut self, x: &Matrix) -> Result<Matrix, Error> {
        if x.rows() != 1 {
            return Err(Error::config(format!(
                "decode expects exactly 1 token row, got {}",
                x.rows()
            )));
        }
        self.step(x, None)
    }

    /// [`Self::forward_batch`] that also returns the residual stream after
    /// every layer — the per-layer observability hook the `e2e_model`
    /// driver's NRMSE report uses.
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn forward_batch_traced(&mut self, x: &Matrix) -> Result<(Matrix, Vec<Matrix>), Error> {
        self.reset();
        let mut trace = Vec::with_capacity(self.blocks.len());
        let out = self.step(x, Some(&mut trace))?;
        Ok((out, trace))
    }

    fn step(&mut self, x: &Matrix, mut trace: Option<&mut Vec<Matrix>>) -> Result<Matrix, Error> {
        if x.cols() != self.hidden {
            return Err(Error::WidthMismatch {
                tensor: "model input".to_string(),
                expected: self.hidden,
                got: x.cols(),
            });
        }
        let p0 = self.pos;
        let mut h = x.clone();
        for li in 0..self.blocks.len() {
            let ctx = |e: Error, what: &str| e.for_tensor(format!("layer {li} {what}"));
            let hn = rms_norm(&h);
            let block = &self.blocks[li];
            let q = block.q.forward(&hn).map_err(|e| ctx(e, "q_proj"))?;
            let k = block.k.forward(&hn).map_err(|e| ctx(e, "k_proj"))?;
            let v = block.v.forward(&hn).map_err(|e| ctx(e, "v_proj"))?;
            self.kv[li]
                .append(&k, &v, self.head_dim)
                .map_err(|e| ctx(e, "kv cache"))?;
            let attn = self
                .attention(li, &q, p0)
                .map_err(|e| ctx(e, "attention"))?;
            let block = &self.blocks[li];
            let o = block.o.forward(&attn).map_err(|e| ctx(e, "o_proj"))?;
            h = h.add(&o);
            let hn = rms_norm(&h);
            let m = match &block.gate {
                Some(gate) => {
                    let g = silu(&gate.forward(&hn).map_err(|e| ctx(e, "mlp_gate"))?);
                    let u = block.up.forward(&hn).map_err(|e| ctx(e, "mlp_up"))?;
                    let gu = Matrix::from_fn(g.rows(), g.cols(), |r, c| g[(r, c)] * u[(r, c)]);
                    block.down.forward(&gu).map_err(|e| ctx(e, "mlp_down"))?
                }
                None => {
                    let u = relu(&block.up.forward(&hn).map_err(|e| ctx(e, "mlp_up"))?);
                    block.down.forward(&u).map_err(|e| ctx(e, "mlp_down"))?
                }
            };
            h = h.add(&m);
            if let Some(t) = trace.as_deref_mut() {
                t.push(h.clone());
            }
        }
        self.pos = p0 + x.rows();
        Ok(h)
    }

    /// Multi-head causal attention over the layer's KV cache, §6.4 hybrid:
    /// quantized score GEMM (Q online, K from the Sg-EM cache), online
    /// Elem-EM quantization of P, dequantized Sg-EM V rows.
    fn attention(&self, li: usize, q: &Matrix, p0: usize) -> Result<Matrix, Error> {
        let be = self.backend.backend();
        let cache = &self.kv[li];
        let (t, hd) = (q.rows(), self.head_dim);
        let scale = 1.0 / (hd as f32).sqrt();
        let heads_per_kv = self.heads / self.kv_heads;
        // Decode each KV head's cache once per step, not once per query
        // head: under GQA the query heads sharing a KV head reuse the same
        // prepared K form and dequantized V rows.
        let prepared_k: Vec<_> = cache.k.iter().map(|k| be.prepare(k.clone())).collect();
        let v_rows: Vec<Matrix> = cache.v.iter().map(|v| v.dequantize()).collect();
        let mut out = Matrix::zeros(t, self.hidden);
        for head in 0..self.heads {
            let kvh = head / heads_per_kv;
            let qh = slice_cols(q, head * hd, hd);
            // Scores = Q·Kᵀ through the backend's quantized GEMM: the K
            // cache rows are exactly the weight layout ([seq, head_dim],
            // grouped along the reduction dimension).
            let mut scores = be.forward(&qh, &prepared_k[kvh])?;
            for i in 0..t {
                let row = scores.row_mut(i);
                for (j, sc) in row.iter_mut().enumerate() {
                    // Causal mask: chunk row i sits at stream position
                    // p0 + i and may only attend to keys at or before it.
                    *sc = if j <= p0 + i {
                        *sc * scale
                    } else {
                        f32::NEG_INFINITY
                    };
                }
            }
            let p = crate::attention::softmax_rows(&scores);
            // P is produced on the fly → online Elem-EM path; V rows were
            // quantized on arrival (per token, so decode == batch) and
            // dequantize here for the value mix.
            let pq = be.fake_quantize_activations(&p, self.cfg);
            let oh = pq.matmul(&v_rows[kvh]);
            debug_assert_eq!((oh.rows(), oh.cols()), (t, hd));
            write_cols(&mut out, &oh, head * hd);
        }
        Ok(out)
    }

    /// Full-precision (f32) forward over the same synthesized weights and
    /// architecture — the oracle the whole-model NRMSE is measured against.
    /// Stateless (always starts from position 0) and available only when
    /// the builder was asked to [`ModelBuilder::keep_reference`].
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch or when the reference weights were
    /// not kept.
    pub fn reference_forward_batch(&self, x: &Matrix) -> Result<Matrix, Error> {
        Ok(self.reference_traced(x)?.0)
    }

    /// [`Self::reference_forward_batch`] that also returns the residual
    /// stream after every layer.
    ///
    /// # Errors
    ///
    /// Same as [`Self::reference_forward_batch`].
    pub fn reference_traced(&self, x: &Matrix) -> Result<(Matrix, Vec<Matrix>), Error> {
        let Some(reference) = &self.reference else {
            return Err(Error::config(
                "reference weights were not kept; build with keep_reference(true)",
            ));
        };
        if x.cols() != self.hidden {
            return Err(Error::WidthMismatch {
                tensor: "model input".to_string(),
                expected: self.hidden,
                got: x.cols(),
            });
        }
        let hd = self.head_dim;
        let heads_per_kv = self.heads / self.kv_heads;
        let scale = 1.0 / (hd as f32).sqrt();
        let mut trace = Vec::with_capacity(reference.len());
        let mut h = x.clone();
        for block in reference {
            let hn = rms_norm(&h);
            let lin = |w: &Matrix, x: &Matrix| x.matmul(&w.transpose());
            let (q, k, v) = (lin(&block.q, &hn), lin(&block.k, &hn), lin(&block.v, &hn));
            let t = q.rows();
            let mut attn = Matrix::zeros(t, self.hidden);
            for head in 0..self.heads {
                let kvh = head / heads_per_kv;
                let qh = slice_cols(&q, head * hd, hd);
                let kh = slice_cols(&k, kvh * hd, hd);
                let vh = slice_cols(&v, kvh * hd, hd);
                let mut scores = qh.matmul(&kh.transpose());
                for i in 0..t {
                    let row = scores.row_mut(i);
                    for (j, sc) in row.iter_mut().enumerate() {
                        *sc = if j <= i {
                            *sc * scale
                        } else {
                            f32::NEG_INFINITY
                        };
                    }
                }
                let p = crate::attention::softmax_rows(&scores);
                write_cols(&mut attn, &p.matmul(&vh), head * hd);
            }
            h = h.add(&lin(&block.o, &attn));
            let hn = rms_norm(&h);
            let m = match &block.gate {
                Some(gate) => {
                    let g = silu(&lin(gate, &hn));
                    let u = lin(&block.up, &hn);
                    let gu = Matrix::from_fn(g.rows(), g.cols(), |r, c| g[(r, c)] * u[(r, c)]);
                    lin(&block.down, &gu)
                }
                None => lin(&block.down, &relu(&lin(&block.up, &hn))),
            };
            h = h.add(&m);
            trace.push(h.clone());
        }
        Ok((h, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::activation_matrix;
    use m2x_tensor::stats::nmse;

    fn tiny_builder() -> ModelBuilder {
        ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 2).keep_reference(true)
    }

    fn tokens(n: usize, hidden: usize) -> Matrix {
        let x = activation_matrix(&ModelProfile::llama3_8b(), 0, n, hidden);
        // Embeddings, not raw activations: tame the outlier channels so the
        // residual stream stays well-conditioned through a deep stack.
        x.map(|v| (v * 0.25).tanh())
    }

    #[test]
    fn builder_validates_dimensions() {
        let p = ModelProfile::llama3_8b();
        assert!(ModelBuilder::scaled(&p, 64, 0).build().is_err());
        // hidden 48 gives a 48-wide head: not group-aligned.
        assert!(ModelBuilder::scaled(&p, 48, 1).build().is_err());
        let err = ModelBuilder::scaled(&p, 64, 1)
            .heads(3, 2)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("heads"), "{err}");
    }

    #[test]
    fn forward_shapes_and_macs() {
        let mut m = tiny_builder().build().unwrap();
        assert_eq!(m.hidden(), 64);
        assert_eq!(m.layer_count(), 2);
        assert_eq!(m.heads(), 1);
        let x = tokens(6, 64);
        let y = m.forward_batch(&x).unwrap();
        assert_eq!((y.rows(), y.cols()), (6, 64));
        assert_eq!(m.seq_len(), 6);
        assert!(m.forward_macs(6, 0) > 0);
        assert!(m.weight_bytes() > 0);
        assert!(m.kv_caches()[0].bytes() > 0);
        assert_eq!(m.kv_caches()[0].seq_len(), 6);
    }

    #[test]
    fn quantized_model_tracks_reference() {
        let mut m = tiny_builder().build().unwrap();
        let x = tokens(8, 64);
        let y = m.forward_batch(&x).unwrap();
        let (y_ref, trace_ref) = m.reference_traced(&x).unwrap();
        let e = nmse(y_ref.as_slice(), y.as_slice());
        assert!(e > 0.0 && e < 0.05, "whole-model nmse {e}");
        assert_eq!(trace_ref.len(), 2);
    }

    #[test]
    fn prefill_then_decode_matches_batch() {
        let mut m = tiny_builder().build().unwrap();
        let x = tokens(5, 64);
        let batch = m.forward_batch(&x).unwrap();
        m.reset();
        let head = Matrix::from_fn(3, 64, |r, c| x[(r, c)]);
        let mut rows = m.prefill(&head).unwrap().into_vec();
        for t in 3..5 {
            let xt = Matrix::from_fn(1, 64, |_, c| x[(t, c)]);
            rows.extend(m.decode(&xt).unwrap().into_vec());
        }
        let inc = Matrix::from_vec(5, 64, rows);
        for (a, b) in batch.as_slice().iter().zip(inc.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn decode_rejects_multi_row_and_bad_width() {
        let mut m = tiny_builder().build().unwrap();
        assert!(m.decode(&tokens(2, 64)).is_err());
        assert!(m.forward_batch(&Matrix::zeros(2, 65)).is_err());
    }

    #[test]
    fn reference_requires_keep_reference() {
        let m = ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1)
            .build()
            .unwrap();
        assert!(m.reference_forward_batch(&tokens(2, 64)).is_err());
    }
}
