//! Model-level quantized inference — the §6 end-to-end setting as an API.
//!
//! [`ModelBuilder`] takes a [`ModelProfile`] + [`M2xfpConfig`], synthesizes
//! every linear weight of a transformer stack (deterministic, from the
//! profile's seed), quantizes each through the threaded integer-LUT Sg-EM
//! search (`PackedWeightTensor::quantize_parallel`, via
//! [`QuantizedLinear`]) and prepares it once for the chosen execution
//! backend. The result splits into two halves:
//!
//! * [`ModelWeights`] — the **immutable, shareable** half: every projection
//!   prepared once for one backend, held behind an `Arc` so any number of
//!   concurrent sessions (threads, serving requests) run against the same
//!   prepared planes. N sessions cost N KV caches, never N weight copies.
//! * [`SessionState`] — the **per-request mutable** half: a [`PagedKv`]
//!   view into the weights' shared [`KvPagePool`] plus the stream
//!   position. KV rows live in fixed-size pool pages (recycled on
//!   release, copy-on-write when shared, prefix-reusable across
//!   requests — see [`crate::kv_pool`]).
//!
//! [`QuantizedModel`] pairs the two into the single-session API:
//!
//! * [`QuantizedModel::forward_batch`] — reset the KV cache and run a full
//!   causal batch (the throughput surface the `e2e_model` driver times);
//! * [`QuantizedModel::prefill`] / [`QuantizedModel::decode`] — the
//!   serving loop: append tokens to the session's paged KV state and
//!   return their outputs. Prefill-then-decode is **bit-identical** to the
//!   one-shot batch (rows quantize independently and every kernel computes
//!   each output element in the same order), which the workspace property
//!   tests pin.
//!
//! [`ModelWeights::step_sessions`] is the multi-session surface the
//! `m2x-serve` continuous-batching scheduler drives: one batched step over
//! many independent sessions, their token rows stacked into single
//! projection GEMMs (each output row depends only on its own input row, so
//! every request's output is bit-identical to running it solo) and the
//! per-request attention fanned out over scoped worker threads.
//!
//! Attention follows the paper's §6.4 hybrid: K is cached in the packed
//! Sg-EM weight representation and consumed by the backend's quantized
//! score GEMM; V rows are Sg-EM-quantized per token and dequantized at
//! use; Q and the probability matrix P run the online Elem-EM path. The
//! cache grows **decode-on-append** (`ExecBackend::append_rows`): each new
//! token's rows are quantized and decoded straight into the prepared
//! execution form, so a decode step costs O(1) per head instead of
//! re-decoding the whole K plane. Everything quantized routes through one
//! [`ExecBackend`](m2xfp::backend::ExecBackend), so the whole model is
//! bit-identical across the packed, grouped and reference engines.

use crate::kv_pool::{KvPagePool, PagedKv, PoolGeometry, PrefixMatch};
use crate::linear::QuantizedLinear;
use crate::profile::{MlpKind, ModelProfile};
use crate::synth::{weight_matrix, LayerKind};
use m2x_telemetry::{stage, StageTally, StageTimer};
use m2x_tensor::Matrix;
use m2xfp::backend::BackendKind;
use m2xfp::gemm::GemmScratch;
use m2xfp::{Error, M2xfpConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Minimum attention MAC volume (per layer, across the whole step batch)
/// that justifies one additional scoped worker in the multi-session step:
/// the worker scope is re-entered every layer, so below this the
/// spawn/join overhead on the decode hot loop exceeds the parallel win.
const ATTN_MACS_PER_WORKER: usize = 1 << 20;

/// Row-wise RMS normalization (unit gain): keeps the residual stream's
/// scale bounded across layers so deep stacks stay in the formats' dynamic
/// range. Purely per-row, so batch and decode paths compute identical bits.
fn rms_norm(m: &Matrix) -> Matrix {
    let n = m.cols() as f64;
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let ss: f64 = row.iter().map(|&v| v as f64 * v as f64).sum();
        let inv = (1.0 / (ss / n + 1e-6).sqrt()) as f32;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// SiLU (x·σ(x)) applied element-wise — the gated-MLP activation.
fn silu(m: &Matrix) -> Matrix {
    m.map(|v| v / (1.0 + (-v).exp()))
}

/// ReLU applied element-wise — the plain-MLP activation.
fn relu(m: &Matrix) -> Matrix {
    m.map(|v| v.max(0.0))
}

/// Copies `width` columns starting at `start` out of `m`.
fn slice_cols(m: &Matrix, start: usize, width: usize) -> Matrix {
    Matrix::from_fn(m.rows(), width, |r, c| m[(r, start + c)])
}

/// Copies `count` rows starting at `start` out of `m`.
fn slice_rows(m: &Matrix, start: usize, count: usize) -> Matrix {
    Matrix::from_fn(count, m.cols(), |r, c| m[(start + r, c)])
}

/// Copies a `rows × width` block of `m` starting at (`r0`, `c0`).
fn slice_block(m: &Matrix, r0: usize, rows: usize, c0: usize, width: usize) -> Matrix {
    Matrix::from_fn(rows, width, |r, c| m[(r0 + r, c0 + c)])
}

/// Writes `src` into `out` at column offset `start`.
fn write_cols(out: &mut Matrix, src: &Matrix, start: usize) {
    write_block(out, src, 0, start)
}

/// Writes `src` into `out` at row offset `r0`.
fn write_rows(out: &mut Matrix, src: &Matrix, r0: usize) {
    write_block(out, src, r0, 0)
}

/// Writes `src` into `out` with its top-left corner at (`r0`, `c0`).
fn write_block(out: &mut Matrix, src: &Matrix, r0: usize, c0: usize) {
    for r in 0..src.rows() {
        let (orow, srow) = (out.row_mut(r0 + r), src.row(r));
        orow[c0..c0 + srow.len()].copy_from_slice(srow);
    }
}

/// One transformer block's quantized projections.
#[derive(Debug, Clone)]
struct Block {
    q: QuantizedLinear,
    k: QuantizedLinear,
    v: QuantizedLinear,
    o: QuantizedLinear,
    /// `Some` for gated (SwiGLU) MLPs, `None` for plain two-matrix MLPs.
    gate: Option<QuantizedLinear>,
    up: QuantizedLinear,
    down: QuantizedLinear,
}

/// One block's f32 weights (transposed `[out, in]`), kept when the builder
/// is asked for the full-precision oracle path.
#[derive(Debug, Clone)]
struct RefBlock {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    o: Matrix,
    gate: Option<Matrix>,
    up: Matrix,
    down: Matrix,
}

/// Accumulates `out += P[:, col0..col0+len] · rhs` with the exact
/// per-element loop of [`Matrix::matmul`] (kk ascending, plain `+=`,
/// zero-skip): each output element accumulates its products in the same
/// order a single matmul over the row-concatenated pages would, so the
/// page-sliced value mix is bit-identical to the monolithic one.
fn matmul_acc(out: &mut Matrix, p: &Matrix, col0: usize, len: usize, rhs: &Matrix) {
    debug_assert_eq!(rhs.rows(), len);
    debug_assert_eq!(out.cols(), rhs.cols());
    debug_assert_eq!(out.rows(), p.rows());
    for i in 0..p.rows() {
        for kk in 0..len {
            let a = p[(i, col0 + kk)];
            if a == 0.0 {
                continue;
            }
            let rrow = rhs.row(kk);
            let orow = out.row_mut(i);
            for (o, &b) in orow.iter_mut().zip(rrow) {
                *o += a * b;
            }
        }
    }
}

/// Reusable scratch state of one long-lived stepping loop (a serving
/// engine thread, a [`QuantizedModel`] session): the main activation
/// scratch threaded through every projection GEMM plus the per-worker
/// scratches the threaded attention path lends out. Holding one across
/// scheduler steps keeps the decode hot loop allocation-free after
/// warm-up — the buffers grow once to the largest projection width and
/// are then refilled in place.
#[derive(Debug, Clone, Default)]
pub struct StepScratch {
    /// Scratch of the single-threaded work: projections and, at one
    /// worker, the attention score GEMVs.
    main: GemmScratch,
    /// One scratch per attention worker (scratches cannot be shared
    /// across threads); grown to the step's worker count and reused
    /// every layer of every subsequent step.
    workers: Vec<GemmScratch>,
    /// Per-step row counts of each session's input, refilled in place
    /// every step so the decode loop stops allocating index vectors.
    counts: Vec<usize>,
    /// Row offsets of each session's block in the stacked step matrix.
    offsets: Vec<usize>,
    /// Stream position of each session at step entry.
    p0s: Vec<usize>,
    /// The step's `(session, head)` attention work items; identical for
    /// every layer of a step, so built once per step and reused.
    items: Vec<(usize, usize)>,
    /// Per-stage elapsed-time accumulator for this step (assemble,
    /// encode, qgemm, attention, kv_append — see
    /// [`m2x_telemetry::stage`]). Disabled by default so plain callers
    /// never pay for clock reads; the serving engine enables it per tick
    /// and merges the split into its lifetime totals.
    pub tally: StageTally,
}

impl StepScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops any buffered activation data (capacity included). Scratch
    /// contents never carry semantic state between steps — every kernel
    /// refills what it reads — so this is only needed to discard a scratch
    /// a caught panic may have left half-written, cheaply re-establishing
    /// the freshly-constructed state without reallocating the struct.
    pub fn reset(&mut self) {
        *self = StepScratch::new();
    }
}

/// Live-session bookkeeping for one weight family: [`SessionState`] holds a
/// ticket that increments the shared counter on creation/clone and
/// decrements it on drop, so [`ModelWeights::open_sessions`] can assert
/// that a serving runtime released every KV cache it admitted.
#[derive(Debug)]
struct SessionTicket(Arc<AtomicUsize>);

impl SessionTicket {
    fn issue(counter: &Arc<AtomicUsize>) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        SessionTicket(Arc::clone(counter))
    }
}

impl Clone for SessionTicket {
    fn clone(&self) -> Self {
        SessionTicket::issue(&self.0)
    }
}

impl Drop for SessionTicket {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The per-request mutable half of a model session: a [`PagedKv`] view
/// into the weights' shared [`KvPagePool`] plus the stream position.
/// Create one per concurrent request with [`ModelWeights::new_session`];
/// the weights stay shared. Dropping (or [`reset`](Self::reset)ting) the
/// session returns its pages to the pool's free list; cloning shares the
/// pages copy-on-write.
#[derive(Debug, Clone)]
pub struct SessionState {
    kv: PagedKv,
    pos: usize,
    /// Keeps the weights' open-session count honest (see [`SessionTicket`]).
    /// Held only for its `Clone`/`Drop` side effects.
    _ticket: SessionTicket,
}

impl SessionState {
    /// Tokens appended so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The session's paged KV view (all layers).
    pub fn kv(&self) -> &PagedKv {
        &self.kv
    }

    /// Total **packed** KV footprint of this session across all layers,
    /// in bytes — the canonical 4.5-bit three-stream representation. The
    /// serving scheduler's KV-memory budget (`kv_budget_bytes`) meters
    /// admission against this; pages shared with other sessions are
    /// counted once per holder. The decoded working state on top is
    /// reported separately by [`Self::kv_decoded_bytes`].
    pub fn kv_bytes(&self) -> usize {
        self.kv.packed_bytes()
    }

    /// Decoded KV working state in bytes: the K execution planes plus the
    /// dequantized V row cache. Not metered by the admission budget —
    /// reported alongside [`Self::kv_bytes`] so accounting stays honest.
    pub fn kv_decoded_bytes(&self) -> usize {
        self.kv.decoded_bytes()
    }

    /// Adopts a frozen prompt-prefix match (from
    /// [`KvPagePool::lookup_prefix`]) into a fresh session: the shared
    /// pages are held read-only (copy-on-write), the position jumps to
    /// the adopted token count, and the recorded prefill output rows for
    /// those tokens are returned — bit-identical to recomputing them.
    /// Must only be called on a fresh session (position zero).
    pub fn adopt_prefix(&mut self, m: PrefixMatch) -> Matrix {
        debug_assert_eq!(self.pos, 0, "prefix adoption requires a fresh session");
        self.kv.adopt_prefix(m.pages, m.tokens);
        self.pos = m.tokens;
        m.out_rows
    }

    /// Returns every page to the pool and resets the stream position.
    pub fn reset(&mut self) {
        self.kv.clear();
        self.pos = 0;
    }
}

/// Builder for a [`QuantizedModel`]: a [`ModelProfile`] supplies the
/// architecture shape and weight statistics, an [`M2xfpConfig`] the format,
/// and a [`BackendKind`] the execution engine. Dimensions can be overridden
/// (or bulk-scaled with [`ModelBuilder::scaled`]) so tests and CI drive the
/// same code at toy sizes.
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    profile: ModelProfile,
    cfg: M2xfpConfig,
    backend: BackendKind,
    hidden: usize,
    intermediate: usize,
    heads: usize,
    kv_heads: usize,
    layers: usize,
    keep_reference: bool,
    kv_page_tokens: Option<usize>,
}

impl ModelBuilder {
    /// A builder with the profile's real architecture dimensions.
    pub fn new(profile: &ModelProfile) -> Self {
        ModelBuilder {
            cfg: M2xfpConfig::default(),
            backend: BackendKind::Packed,
            hidden: profile.hidden,
            intermediate: profile.intermediate,
            heads: profile.heads,
            kv_heads: profile.kv_heads,
            layers: profile.layers,
            keep_reference: false,
            kv_page_tokens: None,
            profile: profile.clone(),
        }
    }

    /// A builder scaled down to `hidden` × `layers`, preserving the
    /// profile's head width (64 where it divides `hidden`), GQA ratio and
    /// MLP expansion factor, rounded to group-aligned dimensions.
    pub fn scaled(profile: &ModelProfile, hidden: usize, layers: usize) -> Self {
        let head_dim = if hidden % 64 == 0 { 64 } else { 32 };
        let heads = (hidden / head_dim).max(1);
        let ratio = (profile.heads / profile.kv_heads).max(1);
        let mut kv_heads = (heads / ratio).max(1);
        while heads % kv_heads != 0 {
            kv_heads -= 1;
        }
        let expand = profile.intermediate as f64 / profile.hidden as f64;
        let intermediate = (((hidden as f64 * expand) / 32.0).round() as usize).max(1) * 32;
        ModelBuilder {
            hidden,
            intermediate,
            heads,
            kv_heads,
            layers,
            ..Self::new(profile)
        }
    }

    /// Sets the quantization configuration.
    pub fn config(mut self, cfg: M2xfpConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the execution backend (default [`BackendKind::Packed`]).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the transformer layer count.
    pub fn layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Overrides the hidden dimension.
    pub fn hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Overrides the MLP intermediate dimension.
    pub fn intermediate(mut self, intermediate: usize) -> Self {
        self.intermediate = intermediate;
        self
    }

    /// Overrides the attention head counts.
    pub fn heads(mut self, heads: usize, kv_heads: usize) -> Self {
        self.heads = heads;
        self.kv_heads = kv_heads;
        self
    }

    /// Keeps the f32 weights alongside the quantized model so
    /// [`QuantizedModel::reference_forward_batch`] (the NRMSE oracle) is
    /// available. Costs one full-precision copy of every weight.
    pub fn keep_reference(mut self, keep: bool) -> Self {
        self.keep_reference = keep;
        self
    }

    /// Overrides the KV pool's page size in tokens (default: one
    /// quantization group, `cfg.group_size`). Must be a positive multiple
    /// of the group size so a page never splits a group.
    pub fn kv_page_tokens(mut self, tokens: usize) -> Self {
        self.kv_page_tokens = Some(tokens);
        self
    }

    fn validate(&self) -> Result<(), Error> {
        let gs = self.cfg.group_size;
        let bad = |msg: String| Err(Error::config(msg));
        if self.layers == 0 {
            return bad("layers must be >= 1".into());
        }
        if self.heads == 0 || self.kv_heads == 0 || self.heads % self.kv_heads != 0 {
            return bad(format!(
                "heads {} must be a positive multiple of kv_heads {}",
                self.heads, self.kv_heads
            ));
        }
        if self.hidden % self.heads != 0 {
            return bad(format!(
                "hidden {} must divide into heads {}",
                self.hidden, self.heads
            ));
        }
        let head_dim = self.hidden / self.heads;
        for (name, dim) in [
            ("hidden", self.hidden),
            ("intermediate", self.intermediate),
            ("head_dim", head_dim),
        ] {
            if dim == 0 || dim % gs != 0 {
                return bad(format!(
                    "{name} {dim} must be a positive multiple of the group size {gs}"
                ));
            }
        }
        if let Some(pt) = self.kv_page_tokens {
            if pt == 0 || pt % gs != 0 {
                return bad(format!(
                    "kv_page_tokens {pt} must be a positive multiple of the group size {gs}"
                ));
            }
        }
        Ok(())
    }

    /// Synthesizes, quantizes and prepares every layer, then opens a fresh
    /// single session over the shared weights.
    ///
    /// # Errors
    ///
    /// Fails on inconsistent or group-misaligned dimensions; the message
    /// names the offending field or layer.
    pub fn build(self) -> Result<QuantizedModel, Error> {
        Ok(QuantizedModel::from_weights(Arc::new(
            self.build_weights()?,
        )))
    }

    /// Synthesizes, quantizes and prepares every layer into the shareable
    /// immutable half only — wrap in an `Arc` and hand to
    /// [`QuantizedModel::from_weights`] or the `m2x-serve` scheduler.
    ///
    /// # Errors
    ///
    /// Same as [`Self::build`].
    pub fn build_weights(self) -> Result<ModelWeights, Error> {
        self.validate()?;
        let (h, inter) = (self.hidden, self.intermediate);
        let head_dim = h / self.heads;
        let kv_dim = self.kv_heads * head_dim;
        let gated = self.profile.mlp == MlpKind::Gated;

        let mut blocks = Vec::with_capacity(self.layers);
        let mut reference = self.keep_reference.then(Vec::new);
        for l in 0..self.layers {
            let synth = |kind: LayerKind, n: usize, k: usize| -> Matrix {
                weight_matrix(&self.profile, kind, l, n, k)
            };
            let quant = |w: &Matrix, name: &str| -> Result<QuantizedLinear, Error> {
                QuantizedLinear::with_backend(w, self.cfg, self.backend)
                    .map_err(|e| e.for_tensor(format!("layer {l} {name}")))
            };
            let wq = synth(LayerKind::Q, h, h);
            let wk = synth(LayerKind::K, kv_dim, h);
            let wv = synth(LayerKind::V, kv_dim, h);
            let wo = synth(LayerKind::O, h, h);
            let wgate = gated.then(|| synth(LayerKind::Gate, inter, h));
            let wup = synth(LayerKind::Up, inter, h);
            let wdown = synth(LayerKind::Down, h, inter);
            blocks.push(Block {
                q: quant(&wq, "q_proj")?,
                k: quant(&wk, "k_proj")?,
                v: quant(&wv, "v_proj")?,
                o: quant(&wo, "o_proj")?,
                gate: wgate.as_ref().map(|w| quant(w, "mlp_gate")).transpose()?,
                up: quant(&wup, "mlp_up")?,
                down: quant(&wdown, "mlp_down")?,
            });
            if let Some(r) = reference.as_mut() {
                r.push(RefBlock {
                    q: wq,
                    k: wk,
                    v: wv,
                    o: wo,
                    gate: wgate,
                    up: wup,
                    down: wdown,
                });
            }
        }

        let pool = KvPagePool::new(PoolGeometry {
            layers: self.layers,
            kv_heads: self.kv_heads,
            head_dim,
            page_tokens: self.kv_page_tokens.unwrap_or(self.cfg.group_size),
            cfg: self.cfg,
            backend: self.backend,
        })?;

        Ok(ModelWeights {
            name: self.profile.name.to_string(),
            cfg: self.cfg,
            backend: self.backend,
            mlp: self.profile.mlp,
            hidden: h,
            intermediate: inter,
            heads: self.heads,
            kv_heads: self.kv_heads,
            head_dim,
            blocks,
            reference,
            sessions: Arc::new(AtomicUsize::new(0)),
            pool,
        })
    }
}

/// The immutable, shareable half of a quantized transformer: every
/// projection held in the packed three-stream representation and prepared
/// once for one execution backend. Hold it in an `Arc` and open any number
/// of concurrent [`SessionState`]s against it — sessions cost a KV cache
/// each, the prepared weights are never copied. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct ModelWeights {
    name: String,
    cfg: M2xfpConfig,
    backend: BackendKind,
    mlp: MlpKind,
    hidden: usize,
    intermediate: usize,
    heads: usize,
    kv_heads: usize,
    head_dim: usize,
    blocks: Vec<Block>,
    reference: Option<Vec<RefBlock>>,
    /// Live [`SessionState`] count opened against this weight family.
    /// Clones of the weights share the counter (they share the prepared
    /// planes too), so it meters the family, not one `Arc` handle.
    sessions: Arc<AtomicUsize>,
    /// Shared paged KV pool every session allocates from. Clones of the
    /// weights share the pool, so prefix pages registered by one handle
    /// are adoptable through any other.
    pool: Arc<KvPagePool>,
}

impl ModelWeights {
    /// Profile name the model was synthesized from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The quantization configuration.
    pub fn config(&self) -> &M2xfpConfig {
        &self.cfg
    }

    /// The execution backend every forward routes through.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Hidden (residual stream) dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// MLP intermediate dimension.
    pub fn intermediate(&self) -> usize {
        self.intermediate
    }

    /// Transformer layer count.
    pub fn layer_count(&self) -> usize {
        self.blocks.len()
    }

    /// Attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// KV heads (GQA when < heads).
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// Width of one attention head.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Total packed weight footprint across all layers, in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                [Some(&b.q), Some(&b.k), Some(&b.v), Some(&b.o)]
                    .into_iter()
                    .chain([b.gate.as_ref(), Some(&b.up), Some(&b.down)])
                    .flatten()
                    .map(QuantizedLinear::weight_bytes)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Multiply–accumulate count of one forward over `tokens` tokens
    /// starting at cache position `start_pos` (linear projections plus the
    /// per-head score/value GEMMs against the grown cache).
    pub fn forward_macs(&self, tokens: usize, start_pos: usize) -> u64 {
        let (t, h) = (tokens as u64, self.hidden as u64);
        let inter = self.intermediate as u64;
        let kv_dim = (self.kv_heads * self.head_dim) as u64;
        let s = (start_pos + tokens) as u64;
        let linear = t * h * h * 2 // q, o
            + t * h * kv_dim * 2 // k, v
            + match self.mlp {
                MlpKind::Gated => 3 * t * h * inter,
                MlpKind::Plain => 2 * t * h * inter,
            };
        let attn = self.heads as u64 * 2 * t * s * self.head_dim as u64;
        (linear + attn) * self.blocks.len() as u64
    }

    /// The shared [`KvPagePool`] sessions of this weight family allocate
    /// their KV pages from (and the prefix index lives in).
    pub fn kv_pool(&self) -> &Arc<KvPagePool> {
        &self.pool
    }

    /// Opens a fresh session (empty KV view, position zero) against these
    /// weights.
    pub fn new_session(&self) -> SessionState {
        SessionState {
            kv: PagedKv::new(Arc::clone(&self.pool)),
            pos: 0,
            _ticket: SessionTicket::issue(&self.sessions),
        }
    }

    /// Number of [`SessionState`]s currently alive against this weight
    /// family (sessions opened minus sessions dropped, clones of a session
    /// counted). The serving layer's zero-leak gate asserts this returns
    /// to 0 after shutdown — a leak here is a leaked KV cache.
    pub fn open_sessions(&self) -> usize {
        self.sessions.load(Ordering::SeqCst)
    }

    /// One batched step over many **independent** sessions — the
    /// continuous-batching surface. `inputs[i]` (`[tokens_i, hidden]`,
    /// prefill chunks and single decode tokens mix freely) is appended to
    /// `sessions[i]` and its causal outputs returned in order.
    ///
    /// All sessions' rows are stacked into one matrix per projection GEMM,
    /// so a decode batch of B requests walks each prepared weight plane
    /// once instead of B times; the per-request attention (KV growth +
    /// score/value GEMMs per head) is sharded over scoped worker threads —
    /// `threads == 0` auto-scales the worker count with the attention work
    /// volume (small steps stay inline, avoiding per-layer spawn overhead),
    /// an explicit count is pinned exactly. Every output row depends only
    /// on its own session's rows and cache, so each request's output is
    /// **bit-identical to running it solo** — for any batch composition and
    /// any thread count — which `tests/proptest_serve.rs` pins.
    ///
    /// # Errors
    ///
    /// Fails on a session/input count mismatch or an input width mismatch.
    // m2x-lint: hot
    pub fn step_sessions(
        &self,
        sessions: &mut [&mut SessionState],
        inputs: &[Matrix],
        threads: usize,
    ) -> Result<Vec<Matrix>, Error> {
        // m2x-lint: allow(alloc) per-step default scratch: the serving engine uses the _scratch variant

        self.step_multi(sessions, inputs, threads, None, &mut StepScratch::default())
    }

    /// [`Self::step_sessions`] with a caller-held reusable [`StepScratch`]:
    /// the serving engine holds one scratch across scheduler steps and
    /// threads it through every projection GEMM and the attention score
    /// GEMVs (per-worker sub-scratches on the threaded path), so the
    /// decode hot loop stops allocating activation planes per call.
    /// Bit-identical to [`Self::step_sessions`] for any scratch state.
    ///
    /// # Errors
    ///
    /// Same as [`Self::step_sessions`].
    // m2x-lint: hot
    pub fn step_sessions_scratch(
        &self,
        sessions: &mut [&mut SessionState],
        inputs: &[Matrix],
        threads: usize,
        scratch: &mut StepScratch,
    ) -> Result<Vec<Matrix>, Error> {
        self.step_multi(sessions, inputs, threads, None, scratch)
    }

    // m2x-lint: hot
    fn step_multi(
        &self,
        sessions: &mut [&mut SessionState],
        inputs: &[Matrix],
        threads: usize,
        mut trace: Option<&mut Vec<Matrix>>,
        scr: &mut StepScratch,
    ) -> Result<Vec<Matrix>, Error> {
        if sessions.len() != inputs.len() {
            // m2x-lint: allow(alloc) cold error path, never taken by a healthy engine
            return Err(Error::config(format!(
                "step got {} sessions but {} inputs",
                sessions.len(),
                inputs.len()
            )));
        }
        for x in inputs {
            if x.cols() != self.hidden {
                return Err(Error::WidthMismatch {
                    // m2x-lint: allow(alloc) cold error path, never taken by a healthy engine
                    tensor: "model input".to_string(),
                    expected: self.hidden,
                    got: x.cols(),
                });
            }
        }
        // The stage tally travels as a local for the rest of the step so
        // timed regions never fight the borrow of the scratch buffers;
        // it is stored back right before the successful return (an error
        // fails the whole step, so its partial split is dropped with it).
        let mut tally = std::mem::take(&mut scr.tally);
        // Step geometry lives in the caller-held scratch: refilled in
        // place each step, so a warm decode loop allocates nothing here.
        tally.time(stage::ASSEMBLE, || {
            scr.counts.clear();
            scr.counts.extend(inputs.iter().map(Matrix::rows));
            scr.offsets.clear();
            scr.offsets.extend(scr.counts.iter().scan(0usize, |acc, c| {
                let o = *acc;
                *acc += c;
                Some(o)
            }));
            scr.p0s.clear();
            scr.p0s.extend(sessions.iter().map(|s| s.pos));
            scr.items.clear();
            scr.items
                .extend((0..sessions.len()).flat_map(|i| (0..self.heads).map(move |hd| (i, hd))));
        });
        let counts: &[usize] = &scr.counts;
        let offsets: &[usize] = &scr.offsets;
        let p0s: &[usize] = &scr.p0s;
        let items: &[(usize, usize)] = &scr.items;
        let total: usize = counts.iter().sum();

        // Worker budget for the per-layer attention phase. The scope is
        // re-entered every layer (the projections in between are sequential
        // barriers), so each extra worker must be paid for by real
        // score/value-GEMM volume or the spawn/join overhead sits directly
        // on the decode hot loop: in auto mode (`threads == 0`) one worker
        // is granted per [`ATTN_MACS_PER_WORKER`] attention MACs, capped at
        // the available cores (mirrors `gemm_threads`' policy). An explicit
        // count is pinned exactly, like `qgemm_packed_threaded`. Any worker
        // count computes identical bits.
        let attn_workers = if threads == 0 {
            let attn_macs: usize = counts
                .iter()
                .zip(p0s)
                .map(|(&c, &p0)| 2 * c * (p0 + c) * self.head_dim * self.heads)
                .sum();
            let avail = std::thread::available_parallelism().map_or(1, |t| t.get());
            avail.min(attn_macs / ATTN_MACS_PER_WORKER + 1)
        } else {
            threads
        }
        .min((sessions.len() * self.heads).max(1))
        .max(1);

        let mut h = tally.time(stage::ASSEMBLE, || {
            let mut h = Matrix::zeros(total, self.hidden);
            for (x, &o) in inputs.iter().zip(offsets) {
                write_rows(&mut h, x, o);
            }
            h
        });

        // Grow the persistent per-worker attention scratch pool to this
        // step's worker count; the slots live in the caller's StepScratch,
        // so they stay warm across layers AND across scheduler steps.
        if attn_workers > 1 && scr.workers.len() < attn_workers {
            scr.workers.resize_with(attn_workers, GemmScratch::new);
        }

        for li in 0..self.blocks.len() {
            // m2x-lint: allow(alloc) closure body is a cold error path, only run when a projection fails
            let ctx = |e: Error, what: &str| e.for_tensor(format!("layer {li} {what}"));
            let hn = tally.time(stage::ENCODE, || rms_norm(&h));
            let block = &self.blocks[li];
            let (q, k, v) = {
                // The guard (not the closure form) because `?` exits the
                // region early: the drop still books the elapsed time.
                let _t = StageTimer::start(&mut tally, stage::QGEMM);
                let q = block
                    .q
                    .forward_scratch(&hn, &mut scr.main)
                    .map_err(|e| ctx(e, "q_proj"))?;
                let k = block
                    .k
                    .forward_scratch(&hn, &mut scr.main)
                    .map_err(|e| ctx(e, "k_proj"))?;
                let v = block
                    .v
                    .forward_scratch(&hn, &mut scr.main)
                    .map_err(|e| ctx(e, "v_proj"))?;
                (q, k, v)
            };

            // Grow every session's paged cache with its own K/V rows
            // (decode-on-append per page: O(new rows) per session,
            // independent of history; shared pages fork copy-on-write).
            {
                let _t = StageTimer::start(&mut tally, stage::KV_APPEND);
                for (i, s) in sessions.iter_mut().enumerate() {
                    let ks = slice_rows(&k, offsets[i], counts[i]);
                    let vs = slice_rows(&v, offsets[i], counts[i]);
                    s.kv.append_layer(li, &ks, &vs)
                        .map_err(|e| ctx(e, "kv cache"))?;
                }
            }

            // Per-(session, head) attention over the grown caches (the
            // work items were built once per step, before the layer loop),
            // sharded across scoped worker threads. Each item reads only
            // its own session's cache and q rows and produces its own
            // output block, so any thread count computes identical bits.
            let _t_attn = StageTimer::start(&mut tally, stage::ATTENTION);
            // m2x-lint: allow(alloc) per-layer cache borrows cannot persist across the mutable session appends above
            let kvs: Vec<&PagedKv> = sessions.iter().map(|s| &s.kv).collect();
            let compute =
                |&(si, head): &(usize, usize), sc: &mut GemmScratch| -> Result<Matrix, Error> {
                    let qh = slice_block(
                        &q,
                        offsets[si],
                        counts[si],
                        head * self.head_dim,
                        self.head_dim,
                    );
                    self.attention_head(kvs[si], li, &qh, head, p0s[si], sc)
                        .map_err(|e| ctx(e, "attention"))
                };
            let workers = attn_workers;
            let head_blocks: Vec<Matrix> = if workers <= 1 {
                // Inline path (the decode hot loop): the step's scratch is
                // reused across every (session, head) score GEMV.
                items
                    .iter()
                    .map(|it| compute(it, &mut scr.main))
                    // m2x-lint: allow(alloc) structural: one output Matrix per (session, head) must be materialized
                    .collect::<Result<_, _>>()?
            } else {
                let per = items.len().div_ceil(workers);
                let chunk_results: Vec<Result<Vec<Matrix>, Error>> = std::thread::scope(|sc| {
                    let handles: Vec<_> = items
                        .chunks(per)
                        .zip(scr.workers.iter_mut())
                        .map(|(chunk, local)| {
                            let compute = &compute;
                            sc.spawn(move || {
                                chunk
                                    .iter()
                                    .map(|it| compute(it, local))
                                    // m2x-lint: allow(alloc) threaded batch path (prefill), not the decode loop
                                    .collect::<Result<Vec<_>, _>>()
                            })
                        })
                        // m2x-lint: allow(alloc) threaded batch path (prefill), not the decode loop
                        .collect();
                    handles
                        .into_iter()
                        // A worker panic is re-raised with its original
                        // payload so the serve layer's catch_unwind fault
                        // isolation sees the real message, not a join error.
                        .map(|h| {
                            h.join()
                                .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                        })
                        // m2x-lint: allow(alloc) threaded batch path (prefill), not the decode loop
                        .collect()
                });
                // m2x-lint: allow(alloc) threaded batch path (prefill), not the decode loop
                let mut all = Vec::with_capacity(items.len());
                for r in chunk_results {
                    all.extend(r?);
                }
                all
            };
            let mut attn = Matrix::zeros(total, self.hidden);
            for (&(si, head), oh) in items.iter().zip(&head_blocks) {
                write_block(&mut attn, oh, offsets[si], head * self.head_dim);
            }
            drop(_t_attn);

            let o = {
                let _t = StageTimer::start(&mut tally, stage::QGEMM);
                block
                    .o
                    .forward_scratch(&attn, &mut scr.main)
                    .map_err(|e| ctx(e, "o_proj"))?
            };
            let hn = tally.time(stage::ENCODE, || {
                h = h.add(&o);
                rms_norm(&h)
            });
            // The MLP is booked whole against `qgemm`: its three
            // projections dominate, and the fused elementwise glue
            // (silu/relu, gate⊙up) is not worth a stage boundary.
            let _t_mlp = StageTimer::start(&mut tally, stage::QGEMM);
            let m = match &block.gate {
                Some(gate) => {
                    let g = silu(
                        &gate
                            .forward_scratch(&hn, &mut scr.main)
                            .map_err(|e| ctx(e, "mlp_gate"))?,
                    );
                    let u = block
                        .up
                        .forward_scratch(&hn, &mut scr.main)
                        .map_err(|e| ctx(e, "mlp_up"))?;
                    let gu = Matrix::from_fn(g.rows(), g.cols(), |r, c| g[(r, c)] * u[(r, c)]);
                    block
                        .down
                        .forward_scratch(&gu, &mut scr.main)
                        .map_err(|e| ctx(e, "mlp_down"))?
                }
                None => {
                    let u = relu(
                        &block
                            .up
                            .forward_scratch(&hn, &mut scr.main)
                            .map_err(|e| ctx(e, "mlp_up"))?,
                    );
                    block
                        .down
                        .forward_scratch(&u, &mut scr.main)
                        .map_err(|e| ctx(e, "mlp_down"))?
                }
            };
            drop(_t_mlp);
            tally.time(stage::ENCODE, || {
                h = h.add(&m);
            });
            if let Some(t) = trace.as_deref_mut() {
                // m2x-lint: allow(alloc) trace instrumentation, never requested by the serving engine
                t.push(h.clone());
            }
        }
        for (s, c) in sessions.iter_mut().zip(counts) {
            s.pos += c;
        }
        let out = tally.time(stage::ASSEMBLE, || {
            offsets
                .iter()
                .zip(counts)
                .map(|(&o, &c)| slice_rows(&h, o, c))
                // m2x-lint: allow(alloc) structural: the per-session output matrices are the step's return value
                .collect()
        });
        scr.tally = tally;
        Ok(out)
    }

    /// One causal attention head over a session's paged cache, §6.4
    /// hybrid: quantized score GEMM (Q online, K from the prepared Sg-EM
    /// pages — **no per-step decode**, each page's plane grew on append),
    /// online Elem-EM quantization of P, cached dequantized Sg-EM V rows.
    ///
    /// Paging preserves bit-identity with the old monolithic cache:
    /// * every score element is an independent dot product over
    ///   `head_dim`, so per-page score GEMMs produce the exact columns of
    ///   the one-plane GEMM;
    /// * P is masked, softmaxed and fake-quantized over **full**
    ///   `[t, seq]` rows *before* any per-page column slicing (its
    ///   quantization groups run along `seq`, which pages would split);
    /// * the value mix accumulates per output element in page order with
    ///   [`matmul_acc`], the exact loop of [`Matrix::matmul`].
    fn attention_head(
        &self,
        kv: &PagedKv,
        li: usize,
        qh: &Matrix,
        head: usize,
        p0: usize,
        scratch: &mut GemmScratch,
    ) -> Result<Matrix, Error> {
        let be = self.backend.backend();
        let heads_per_kv = self.heads / self.kv_heads;
        let kvh = head / heads_per_kv;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let t = qh.rows();
        let seq = kv.layer_len(li);
        let pt = kv.pool().page_tokens();
        let pages = seq.div_ceil(pt);
        // Scores = Q·Kᵀ through the backend's quantized GEMM, one GEMM
        // per page: each page's K rows are exactly the weight layout
        // ([rows, head_dim], grouped along the reduction dimension).
        // Decode steps (t == 1) ride the GEMV fast path with the reused
        // scratch.
        let mut scores = Matrix::zeros(t, seq);
        for pi in 0..pages {
            let s = be.forward_scratch(qh, kv.page_k(pi, li, kvh), scratch)?;
            write_cols(&mut scores, &s, pi * pt);
        }
        for i in 0..t {
            let row = scores.row_mut(i);
            for (j, sc) in row.iter_mut().enumerate() {
                // Causal mask: chunk row i sits at stream position p0 + i
                // and may only attend to keys at or before it.
                *sc = if j <= p0 + i {
                    *sc * scale
                } else {
                    f32::NEG_INFINITY
                };
            }
        }
        let p = crate::attention::softmax_rows(&scores);
        // P is produced on the fly → online Elem-EM path; V rows were
        // quantized on arrival (per token, so decode == batch) and their
        // dequantized form is cached per page for the value mix.
        let pq = be.fake_quantize_activations(&p, self.cfg);
        let mut oh = Matrix::zeros(t, self.head_dim);
        for pi in 0..pages {
            let rows = kv.page_rows(li, pi);
            matmul_acc(&mut oh, &pq, pi * pt, rows, kv.page_v_rows(pi, li, kvh));
        }
        Ok(oh)
    }

    /// Full-precision (f32) forward over the same synthesized weights and
    /// architecture — the oracle the whole-model NRMSE is measured against.
    /// Stateless (always starts from position 0) and available only when
    /// the builder was asked to [`ModelBuilder::keep_reference`].
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch or when the reference weights were
    /// not kept.
    pub fn reference_forward_batch(&self, x: &Matrix) -> Result<Matrix, Error> {
        Ok(self.reference_traced(x)?.0)
    }

    /// [`Self::reference_forward_batch`] that also returns the residual
    /// stream after every layer.
    ///
    /// # Errors
    ///
    /// Same as [`Self::reference_forward_batch`].
    pub fn reference_traced(&self, x: &Matrix) -> Result<(Matrix, Vec<Matrix>), Error> {
        let Some(reference) = &self.reference else {
            return Err(Error::config(
                "reference weights were not kept; build with keep_reference(true)",
            ));
        };
        if x.cols() != self.hidden {
            return Err(Error::WidthMismatch {
                tensor: "model input".to_string(),
                expected: self.hidden,
                got: x.cols(),
            });
        }
        let hd = self.head_dim;
        let heads_per_kv = self.heads / self.kv_heads;
        let scale = 1.0 / (hd as f32).sqrt();
        let mut trace = Vec::with_capacity(reference.len());
        let mut h = x.clone();
        for block in reference {
            let hn = rms_norm(&h);
            let lin = |w: &Matrix, x: &Matrix| x.matmul(&w.transpose());
            let (q, k, v) = (lin(&block.q, &hn), lin(&block.k, &hn), lin(&block.v, &hn));
            let t = q.rows();
            let mut attn = Matrix::zeros(t, self.hidden);
            for head in 0..self.heads {
                let kvh = head / heads_per_kv;
                let qh = slice_cols(&q, head * hd, hd);
                let kh = slice_cols(&k, kvh * hd, hd);
                let vh = slice_cols(&v, kvh * hd, hd);
                let mut scores = qh.matmul(&kh.transpose());
                for i in 0..t {
                    let row = scores.row_mut(i);
                    for (j, sc) in row.iter_mut().enumerate() {
                        *sc = if j <= i {
                            *sc * scale
                        } else {
                            f32::NEG_INFINITY
                        };
                    }
                }
                let p = crate::attention::softmax_rows(&scores);
                write_cols(&mut attn, &p.matmul(&vh), head * hd);
            }
            h = h.add(&lin(&block.o, &attn));
            let hn = rms_norm(&h);
            let m = match &block.gate {
                Some(gate) => {
                    let g = silu(&lin(gate, &hn));
                    let u = lin(&block.up, &hn);
                    let gu = Matrix::from_fn(g.rows(), g.cols(), |r, c| g[(r, c)] * u[(r, c)]);
                    lin(&block.down, &gu)
                }
                None => lin(&block.down, &relu(&lin(&block.up, &hn))),
            };
            h = h.add(&m);
            trace.push(h.clone());
        }
        Ok((h, trace))
    }
}

/// A whole transformer stack quantized to M2XFP: an `Arc`-shared
/// [`ModelWeights`] paired with one [`SessionState`] — the single-session
/// inference API. Cloning shares the weights and copies only the session.
/// See the [module docs](self).
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    weights: Arc<ModelWeights>,
    state: SessionState,
    /// Reusable scratch of the session's GEMMs: decode steps run
    /// allocation-free through the GEMV fast path after warm-up.
    scratch: StepScratch,
}

impl QuantizedModel {
    /// Opens a fresh session over already-prepared shared weights — O(KV
    /// cache), the weights are not copied. This is how the serving runtime
    /// turns one prepared model into many concurrent sessions.
    pub fn from_weights(weights: Arc<ModelWeights>) -> Self {
        let state = weights.new_session();
        QuantizedModel {
            weights,
            state,
            scratch: StepScratch::new(),
        }
    }

    /// The shared immutable half (architecture + prepared projections).
    pub fn weights(&self) -> &Arc<ModelWeights> {
        &self.weights
    }

    /// The per-session mutable half (KV caches + position).
    pub fn session(&self) -> &SessionState {
        &self.state
    }

    /// Profile name the model was synthesized from.
    pub fn name(&self) -> &str {
        self.weights.name()
    }

    /// The quantization configuration.
    pub fn config(&self) -> &M2xfpConfig {
        self.weights.config()
    }

    /// The execution backend every forward routes through.
    pub fn backend(&self) -> BackendKind {
        self.weights.backend()
    }

    /// Hidden (residual stream) dimension.
    pub fn hidden(&self) -> usize {
        self.weights.hidden()
    }

    /// MLP intermediate dimension.
    pub fn intermediate(&self) -> usize {
        self.weights.intermediate()
    }

    /// Transformer layer count.
    pub fn layer_count(&self) -> usize {
        self.weights.layer_count()
    }

    /// Attention heads.
    pub fn heads(&self) -> usize {
        self.weights.heads()
    }

    /// KV heads (GQA when < heads).
    pub fn kv_heads(&self) -> usize {
        self.weights.kv_heads()
    }

    /// Width of one attention head.
    pub fn head_dim(&self) -> usize {
        self.weights.head_dim()
    }

    /// Tokens currently held in the KV cache.
    pub fn seq_len(&self) -> usize {
        self.state.pos
    }

    /// The session's paged KV view (all layers).
    pub fn kv(&self) -> &PagedKv {
        &self.state.kv
    }

    /// Total packed weight footprint across all layers, in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.weights.weight_bytes()
    }

    /// Multiply–accumulate count of one forward over `tokens` tokens
    /// starting at cache position `start_pos`.
    pub fn forward_macs(&self, tokens: usize, start_pos: usize) -> u64 {
        self.weights.forward_macs(tokens, start_pos)
    }

    /// Drops the KV cache and resets the stream position to zero.
    pub fn reset(&mut self) {
        self.state.reset();
    }

    /// One-shot causal forward over a full batch of token embeddings
    /// `[tokens, hidden]`: resets the session, then prefills. Bit-identical
    /// to any prefill/decode split of the same rows.
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn forward_batch(&mut self, x: &Matrix) -> Result<Matrix, Error> {
        self.reset();
        self.step(x, None)
    }

    /// Appends a chunk of tokens `[tokens, hidden]` to the session and
    /// returns their outputs (causal within the chunk and against the
    /// cache).
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn prefill(&mut self, x: &Matrix) -> Result<Matrix, Error> {
        self.step(x, None)
    }

    /// Appends exactly one token `[1, hidden]` — the serving decode step.
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch or a multi-row input.
    pub fn decode(&mut self, x: &Matrix) -> Result<Matrix, Error> {
        if x.rows() != 1 {
            return Err(Error::config(format!(
                "decode expects exactly 1 token row, got {}",
                x.rows()
            )));
        }
        self.step(x, None)
    }

    /// [`Self::forward_batch`] that also returns the residual stream after
    /// every layer — the per-layer observability hook the `e2e_model`
    /// driver's NRMSE report uses.
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch.
    pub fn forward_batch_traced(&mut self, x: &Matrix) -> Result<(Matrix, Vec<Matrix>), Error> {
        self.reset();
        let mut trace = Vec::with_capacity(self.weights.layer_count());
        let out = self.step(x, Some(&mut trace))?;
        Ok((out, trace))
    }

    fn step(&mut self, x: &Matrix, trace: Option<&mut Vec<Matrix>>) -> Result<Matrix, Error> {
        let inputs = [x.clone()];
        let mut outs = self.weights.step_multi(
            &mut [&mut self.state],
            &inputs,
            1,
            trace,
            &mut self.scratch,
        )?;
        outs.pop().ok_or_else(|| Error::Config {
            msg: "step_multi returned no output for a single-session step".to_string(),
        })
    }

    /// Full-precision (f32) forward over the same synthesized weights —
    /// see [`ModelWeights::reference_forward_batch`].
    ///
    /// # Errors
    ///
    /// Fails on an input width mismatch or when the reference weights were
    /// not kept.
    pub fn reference_forward_batch(&self, x: &Matrix) -> Result<Matrix, Error> {
        self.weights.reference_forward_batch(x)
    }

    /// [`Self::reference_forward_batch`] that also returns the residual
    /// stream after every layer.
    ///
    /// # Errors
    ///
    /// Same as [`Self::reference_forward_batch`].
    pub fn reference_traced(&self, x: &Matrix) -> Result<(Matrix, Vec<Matrix>), Error> {
        self.weights.reference_traced(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::activation_matrix;
    use m2x_tensor::stats::nmse;

    fn tiny_builder() -> ModelBuilder {
        ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 2).keep_reference(true)
    }

    fn tokens(n: usize, hidden: usize) -> Matrix {
        let x = activation_matrix(&ModelProfile::llama3_8b(), 0, n, hidden);
        // Embeddings, not raw activations: tame the outlier channels so the
        // residual stream stays well-conditioned through a deep stack.
        x.map(|v| (v * 0.25).tanh())
    }

    #[test]
    fn session_accounting_tracks_open_and_dropped_sessions() {
        let weights = tiny_builder().build_weights().unwrap();
        assert_eq!(weights.open_sessions(), 0);
        let a = weights.new_session();
        let b = weights.new_session();
        assert_eq!(weights.open_sessions(), 2);
        // Clones of the weights share the counter; clones of a session
        // count as their own live KV cache.
        let alias = weights.clone();
        assert_eq!(alias.open_sessions(), 2);
        let b2 = b.clone();
        assert_eq!(weights.open_sessions(), 3);
        drop(b2);
        drop(a);
        assert_eq!(weights.open_sessions(), 1);
        drop(b);
        assert_eq!(weights.open_sessions(), 0);
        assert_eq!(alias.open_sessions(), 0);
    }

    #[test]
    fn session_kv_bytes_grows_with_appended_tokens() {
        let weights = tiny_builder().build_weights().unwrap();
        let mut sessions = [weights.new_session()];
        let mut refs: Vec<&mut SessionState> = sessions.iter_mut().collect();
        assert_eq!(refs[0].kv_bytes(), 0);
        let x = tokens(4, 64);
        weights
            .step_sessions(&mut refs, std::slice::from_ref(&x), 1)
            .unwrap();
        let after_prefill = refs[0].kv_bytes();
        assert!(after_prefill > 0);
        assert_eq!(after_prefill, refs[0].kv().packed_bytes());
        assert!(
            refs[0].kv_decoded_bytes() > 0,
            "decoded working state must be reported alongside the packed bytes"
        );
        weights
            .step_sessions(&mut refs, &[tokens(1, 64)], 1)
            .unwrap();
        assert!(refs[0].kv_bytes() > after_prefill);
    }

    #[test]
    fn builder_validates_dimensions() {
        let p = ModelProfile::llama3_8b();
        assert!(ModelBuilder::scaled(&p, 64, 0).build().is_err());
        // hidden 48 gives a 48-wide head: not group-aligned.
        assert!(ModelBuilder::scaled(&p, 48, 1).build().is_err());
        let err = ModelBuilder::scaled(&p, 64, 1)
            .heads(3, 2)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("heads"), "{err}");
    }

    #[test]
    fn forward_shapes_and_macs() {
        let mut m = tiny_builder().build().unwrap();
        assert_eq!(m.hidden(), 64);
        assert_eq!(m.layer_count(), 2);
        assert_eq!(m.heads(), 1);
        let x = tokens(6, 64);
        let y = m.forward_batch(&x).unwrap();
        assert_eq!((y.rows(), y.cols()), (6, 64));
        assert_eq!(m.seq_len(), 6);
        assert!(m.forward_macs(6, 0) > 0);
        assert!(m.weight_bytes() > 0);
        assert!(m.kv().packed_bytes() > 0);
        assert_eq!(m.kv().tokens(), 6);
    }

    #[test]
    fn quantized_model_tracks_reference() {
        let mut m = tiny_builder().build().unwrap();
        let x = tokens(8, 64);
        let y = m.forward_batch(&x).unwrap();
        let (y_ref, trace_ref) = m.reference_traced(&x).unwrap();
        let e = nmse(y_ref.as_slice(), y.as_slice());
        assert!(e > 0.0 && e < 0.05, "whole-model nmse {e}");
        assert_eq!(trace_ref.len(), 2);
    }

    #[test]
    fn prefill_then_decode_matches_batch() {
        let mut m = tiny_builder().build().unwrap();
        let x = tokens(5, 64);
        let batch = m.forward_batch(&x).unwrap();
        m.reset();
        let head = Matrix::from_fn(3, 64, |r, c| x[(r, c)]);
        let mut rows = m.prefill(&head).unwrap().into_vec();
        for t in 3..5 {
            let xt = Matrix::from_fn(1, 64, |_, c| x[(t, c)]);
            rows.extend(m.decode(&xt).unwrap().into_vec());
        }
        let inc = Matrix::from_vec(5, 64, rows);
        for (a, b) in batch.as_slice().iter().zip(inc.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn shared_weight_sessions_match_solo_bitwise() {
        // Two sessions over one Arc of prepared weights, stepped as a
        // batch, reproduce two independent solo models bit for bit — the
        // SharedModel contract the serving runtime is built on.
        let weights = Arc::new(tiny_builder().build_weights().unwrap());
        let xa = tokens(4, 64);
        let xb = tokens(7, 64);

        let mut solo_a = QuantizedModel::from_weights(Arc::clone(&weights));
        let mut solo_b = QuantizedModel::from_weights(Arc::clone(&weights));
        let ya = solo_a.forward_batch(&xa).unwrap();
        let yb = solo_b.forward_batch(&xb).unwrap();

        let mut sa = weights.new_session();
        let mut sb = weights.new_session();
        for threads in [1usize, 3] {
            sa.reset();
            sb.reset();
            let outs = weights
                .step_sessions(&mut [&mut sa, &mut sb], &[xa.clone(), xb.clone()], threads)
                .unwrap();
            for (want, got) in [(&ya, &outs[0]), (&yb, &outs[1])] {
                for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
                }
            }
            assert_eq!(sa.pos(), 4);
            assert_eq!(sb.pos(), 7);
        }
    }

    #[test]
    fn step_sessions_scratch_reuse_matches_fresh_scratch_bitwise() {
        // One scratch carried across scheduler steps (the serving engine
        // pattern) produces the same bits as a fresh scratch per step.
        let weights = Arc::new(tiny_builder().build_weights().unwrap());
        let x = tokens(3, 64);
        let tok = tokens(1, 64);
        let mut fresh = weights.new_session();
        let a0 = weights
            .step_sessions(&mut [&mut fresh], std::slice::from_ref(&x), 1)
            .unwrap();
        let a1 = weights
            .step_sessions(&mut [&mut fresh], std::slice::from_ref(&tok), 1)
            .unwrap();
        let mut reused = weights.new_session();
        let mut scratch = StepScratch::new();
        let b0 = weights
            .step_sessions_scratch(&mut [&mut reused], &[x], 1, &mut scratch)
            .unwrap();
        let b1 = weights
            .step_sessions_scratch(&mut [&mut reused], &[tok], 1, &mut scratch)
            .unwrap();
        for (a, b) in [(a0, b0), (a1, b1)] {
            for (p, q) in a[0].as_slice().iter().zip(b[0].as_slice()) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn prefix_adoption_matches_full_prefill_bitwise() {
        // Session A prefills a 40-token prompt and registers its prefix;
        // session B adopts the frozen 32-token page, prefills only the
        // suffix, and must reproduce A's outputs and decode stream bit
        // for bit — the serving-layer prefix-reuse contract.
        let weights = Arc::new(tiny_builder().build_weights().unwrap());
        let x = tokens(40, 64);
        let mut solo = weights.new_session();
        let full = weights
            .step_sessions(&mut [&mut solo], std::slice::from_ref(&x), 1)
            .unwrap();
        weights.kv_pool().register_prefix(&x, &full[0], solo.kv());

        let m = weights.kv_pool().lookup_prefix(&x).expect("prefix hit");
        assert_eq!(m.tokens, 32);
        let mut adopted = weights.new_session();
        let head = adopted.adopt_prefix(m);
        assert_eq!(adopted.pos(), 32);
        let suffix = slice_rows(&x, 32, 8);
        let tail = weights
            .step_sessions(&mut [&mut adopted], &[suffix], 1)
            .unwrap();
        let mut stitched = head;
        stitched.push_rows(&tail[0]);
        for (a, b) in full[0].as_slice().iter().zip(stitched.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "adopted prefill diverged");
        }

        // The adopted KV state must continue decoding identically too.
        let tok = tokens(1, 64);
        let d_solo = weights
            .step_sessions(&mut [&mut solo], std::slice::from_ref(&tok), 1)
            .unwrap();
        let d_adopt = weights
            .step_sessions(&mut [&mut adopted], std::slice::from_ref(&tok), 1)
            .unwrap();
        for (a, b) in d_solo[0].as_slice().iter().zip(d_adopt[0].as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "adopted decode diverged");
        }
        assert!(weights.kv_pool().stats().prefix_hits >= 1);
        assert!(weights.kv_pool().verify_frozen());
    }

    #[test]
    fn step_sessions_validates_inputs() {
        let weights = Arc::new(tiny_builder().build_weights().unwrap());
        let mut s = weights.new_session();
        assert!(weights.step_sessions(&mut [&mut s], &[], 1).is_err());
        let bad = Matrix::zeros(2, 65);
        assert!(weights.step_sessions(&mut [&mut s], &[bad], 1).is_err());
    }

    #[test]
    fn decode_rejects_multi_row_and_bad_width() {
        let mut m = tiny_builder().build().unwrap();
        assert!(m.decode(&tokens(2, 64)).is_err());
        assert!(m.forward_batch(&Matrix::zeros(2, 65)).is_err());
    }

    #[test]
    fn reference_requires_keep_reference() {
        let m = ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1)
            .build()
            .unwrap();
        assert!(m.reference_forward_batch(&tokens(2, 64)).is_err());
    }
}
