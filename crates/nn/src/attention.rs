//! Quantized attention — the §6.4 extension of M2XFP to the KV cache.
//!
//! In attention, K and V are right-hand GEMM operands that can be
//! quantized lazily (like weights, with the adaptive Sg-EM search), while
//! Q and the probability matrix P are produced on the fly and need the
//! online Elem-EM path: `P = Q·Kᵀ`, `O = P·V`. This module evaluates the
//! output error of that hybrid against any uniform format.
//!
//! With [`m2xfp::quantizer::M2xfpQuantizer`] as the `cached` format, the
//! K/V quantization runs the threaded integer-LUT Sg-EM search (the
//! `PackedWeightTensor::quantize_parallel` route), bit-identical to the
//! legacy float search — long-context KV caches quantize at weight-search
//! speed instead of the old ~12 s/4096² rate.

use crate::profile::ModelProfile;
use m2x_tensor::{stats, Matrix, Xoshiro};
use m2xfp::backend::ExecBackend;
use m2xfp::format::PackedWeightTensor;
use m2xfp::{Error, M2xfpConfig, TensorQuantizer};

/// Row-wise softmax (f32; the probability matrix of attention).
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let mx = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - mx).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
    out
}

/// Error of one quantized attention head.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionError {
    /// NMSE of the score matrix `Q·Kᵀ`.
    pub scores_nmse: f64,
    /// NMSE of the attention output `P·V`.
    pub output_nmse: f64,
}

/// Synthesizes one head's Q/K/V from a model profile (queries share the
/// activation statistics; keys/values are mildly smoother, as post-RoPE
/// projections are).
pub fn synth_head(profile: &ModelProfile, seq: usize, head_dim: usize) -> (Matrix, Matrix, Matrix) {
    let mut r = Xoshiro::seed(profile.seed ^ 0xA77E_0000);
    let nu = profile.act_student_nu;
    let q = Matrix::from_fn(seq, head_dim, |_, _| r.student_t(nu) * 0.7);
    let k = Matrix::from_fn(seq, head_dim, |_, _| r.student_t(nu) * 0.7);
    let v = Matrix::from_fn(seq, head_dim, |_, _| r.student_t(nu + 2) * 0.8);
    (q, k, v)
}

/// Runs one attention head with `dynamic` quantization on Q/P (the online
/// path) and `cached` quantization on K/V (the lazily quantized cache).
pub fn evaluate_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    dynamic: &dyn TensorQuantizer,
    cached: &dyn TensorQuantizer,
) -> AttentionError {
    let scale = 1.0 / (q.cols() as f32).sqrt();

    let scores_ref = q.matmul(&k.transpose()).map(|x| x * scale);
    let p_ref = softmax_rows(&scores_ref);
    let out_ref = p_ref.matmul(v);

    let scores_q = dynamic
        .quantize_activations(q)
        .matmul(&cached.quantize_weights(k).transpose())
        .map(|x| x * scale);
    let p_q = softmax_rows(&scores_q);
    // V is grouped along seq for the P·V product: quantize its transpose
    // (rows along the reduction dimension), then transpose back.
    let v_q = cached.quantize_weights(&v.transpose()).transpose();
    let out_q = dynamic.quantize_activations(&p_q).matmul(&v_q);

    AttentionError {
        scores_nmse: stats::nmse(scores_ref.as_slice(), scores_q.as_slice()),
        output_nmse: stats::nmse(out_ref.as_slice(), out_q.as_slice()),
    }
}

/// Runs one attention head through an execution backend — the engine-true
/// variant of [`evaluate_attention`]: the score GEMM `Q·Kᵀ` and the value
/// GEMM `P·V` both execute the backend's quantized kernel against Sg-EM
/// prepared K/Vᵀ (the lazily quantized cache operands), with Q and P
/// quantized online inside the forward. All backends report bit-identical
/// errors.
///
/// This measures the full-sequence offline setting, where Vᵀ may be
/// grouped along seq. `m2x_nn::model`'s KV-cache attention shares the
/// score route but quantizes V **per token along the head dimension**
/// (grouping V along a growing seq axis would let future tokens perturb
/// past group scales, breaking causality and the prefill/decode
/// equivalence) and mixes the dequantized V rows in f32 — so its
/// attention error differs slightly from the number reported here.
///
/// # Errors
///
/// Fails when Q/K/V shapes are inconsistent.
pub fn evaluate_attention_backend(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    backend: &dyn ExecBackend,
    cfg: M2xfpConfig,
) -> Result<AttentionError, Error> {
    let scale = 1.0 / (q.cols() as f32).sqrt();

    let scores_ref = q.matmul(&k.transpose()).map(|x| x * scale);
    let p_ref = softmax_rows(&scores_ref);
    let out_ref = p_ref.matmul(v);

    // K rows are already the weight layout ([seq, head_dim], rows along the
    // reduction dimension); V must be grouped along seq for P·V, so its
    // transpose is the cached weight operand.
    let pk = backend.prepare(PackedWeightTensor::quantize_parallel(k, cfg));
    let pv = backend.prepare(PackedWeightTensor::quantize_parallel(&v.transpose(), cfg));
    let scores_q = backend
        .forward(q, &pk)
        .map_err(|e| e.for_tensor("attention scores (Q·Kᵀ)"))?
        .map(|x| x * scale);
    let p_q = softmax_rows(&scores_q);
    let out_q = backend
        .forward(&p_q, &pv)
        .map_err(|e| e.for_tensor("attention output (P·V)"))?;

    Ok(AttentionError {
        scores_nmse: stats::nmse(scores_ref.as_slice(), scores_q.as_slice()),
        output_nmse: stats::nmse(out_ref.as_slice(), out_q.as_slice()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_baselines::MxQuantizer;
    use m2xfp::quantizer::{Fp16Reference, M2xfpQuantizer};

    #[test]
    fn softmax_rows_are_distributions() {
        let m = Matrix::from_fn(4, 8, |r, c| ((r * 8 + c) as f32 * 0.7).sin() * 3.0);
        let p = softmax_rows(&m);
        for r in 0..4 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn fp16_attention_nearly_exact() {
        let p = ModelProfile::llama3_8b();
        let (q, k, v) = synth_head(&p, 32, 32);
        let e = evaluate_attention(&q, &k, &v, &Fp16Reference, &Fp16Reference);
        assert!(e.output_nmse < 1e-5, "{}", e.output_nmse);
    }

    #[test]
    fn m2xfp_hybrid_beats_uniform_mxfp4() {
        // §6.4: Elem-EM for Q/P + Sg-EM for the KV cache outperforms plain
        // MXFP4 on everything.
        let p = ModelProfile::llama3_8b();
        let (q, k, v) = synth_head(&p, 64, 64);
        let m2 = M2xfpQuantizer::default();
        let mx = MxQuantizer::mxfp4();
        let e_m2 = evaluate_attention(&q, &k, &v, &m2, &m2);
        let e_mx = evaluate_attention(&q, &k, &v, &mx, &mx);
        assert!(
            e_m2.output_nmse < e_mx.output_nmse,
            "m2xfp {} vs mxfp4 {}",
            e_m2.output_nmse,
            e_mx.output_nmse
        );
        assert!(e_m2.scores_nmse < e_mx.scores_nmse);
    }

    #[test]
    fn kv_cache_lut_search_matches_legacy_float_search() {
        // The M2XFP KV-cache path now quantizes K/V through the threaded
        // LUT search; attention errors must be bit-identical to the legacy
        // per-group float Sg-EM search.
        use m2x_tensor::Matrix;
        use m2xfp::quantizer::ReferenceM2xfpQuantizer;

        let p = ModelProfile::llama3_8b();
        let (q, k, v) = synth_head(&p, 48, 32);
        let m2 = M2xfpQuantizer::default();
        let oracle = ReferenceM2xfpQuantizer::default();
        let kq: Matrix = m2.quantize_weights(&k);
        let kq_ref: Matrix = oracle.quantize_weights(&k);
        for (a, b) in kq.as_slice().iter().zip(kq_ref.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let e = evaluate_attention(&q, &k, &v, &m2, &m2);
        let e_ref = evaluate_attention(&q, &k, &v, &oracle, &oracle);
        assert_eq!(e.scores_nmse.to_bits(), e_ref.scores_nmse.to_bits());
        assert_eq!(e.output_nmse.to_bits(), e_ref.output_nmse.to_bits());
    }

    #[test]
    fn backend_routed_attention_identical_across_backends() {
        use m2xfp::backend::BackendKind;
        let p = ModelProfile::llama3_8b();
        let (q, k, v) = synth_head(&p, 40, 64);
        let cfg = M2xfpConfig::default();
        let errs: Vec<AttentionError> = BackendKind::ALL
            .iter()
            .map(|b| evaluate_attention_backend(&q, &k, &v, b.backend(), cfg).unwrap())
            .collect();
        assert!(errs[0].output_nmse > 0.0 && errs[0].output_nmse.is_finite());
        for e in &errs[1..] {
            assert_eq!(errs[0].scores_nmse.to_bits(), e.scores_nmse.to_bits());
            assert_eq!(errs[0].output_nmse.to_bits(), e.output_nmse.to_bits());
        }
    }

    #[test]
    fn head_synthesis_deterministic() {
        let p = ModelProfile::mistral_7b();
        let (q1, _, _) = synth_head(&p, 16, 16);
        let (q2, _, _) = synth_head(&p, 16, 16);
        assert_eq!(q1, q2);
    }
}
