//! A dependency-free, drop-in subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API.
//!
//! The container this reproduction builds in has no network access, so the
//! real criterion crate cannot be fetched. The bench files under
//! `crates/bench/benches/` are written against the criterion API; this crate
//! provides the same surface (`Criterion`, `benchmark_group`, `Throughput`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) backed by a simple
//! wall-clock sampler:
//!
//! * each benchmark is warmed up for [`WARMUP`] and then measured for a time
//!   budget of [`MEASURE`] (override with `M2X_BENCH_BUDGET_MS`),
//! * the reported figure is the **median** of per-batch ns/iter samples,
//!   which is robust against scheduler noise,
//! * when a `Throughput` is set, elements/second is derived and printed,
//! * setting `M2X_BENCH_JSON=<path>` writes the run's measurements to a
//!   JSON report when the driver finishes — note it **overwrites** the
//!   file, so point each bench binary at its own path.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Default warmup per benchmark.
pub const WARMUP: Duration = Duration::from_millis(120);

/// Default measurement budget per benchmark.
pub const MEASURE: Duration = Duration::from_millis(700);

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (elements or bytes per
/// iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, compatible with `BenchmarkId::from_parameter` and
/// `BenchmarkId::new`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` of the benchmark.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Elements per iteration, when the group declared a throughput.
    pub elements: Option<u64>,
    /// Iterations actually executed during measurement.
    pub iters: u64,
}

impl Measurement {
    /// Elements per second implied by the measurement (when known).
    pub fn elems_per_sec(&self) -> Option<f64> {
        self.elements.map(|e| e as f64 * 1e9 / self.ns_per_iter)
    }
}

/// The per-iteration timing driver passed to benchmark closures.
pub struct Bencher<'a> {
    budget: Duration,
    result: &'a mut Option<(f64, u64)>,
}

impl Bencher<'_> {
    /// Times `f`, storing the median ns/iter over timed batches.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup: run until the warmup window has elapsed, counting
        // iterations to size the measurement batches. Scaled down with the
        // budget so M2X_BENCH_BUDGET_MS actually bounds total run time.
        let warmup = WARMUP.min(self.budget);
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warmup.as_nanos() as f64 / warm_iters.max(1) as f64;
        // Aim for ~25 batches within the budget, at least 1 iter per batch.
        let batch = ((self.budget.as_nanos() as f64 / 25.0 / per_iter) as u64).max(1);

        let mut samples: Vec<f64> = Vec::new();
        let mut total_iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < self.budget || samples.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_nanos() as f64;
            samples.push(dt / batch as f64);
            total_iters += batch;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
        let median = samples[samples.len() / 2];
        *self.result = Some((median, total_iters));
    }
}

fn budget() -> Duration {
    std::env::var("M2X_BENCH_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(MEASURE)
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name.to_string(), None, f);
        self
    }

    fn run_one(&mut self, id: String, elements: Option<u64>, mut f: impl FnMut(&mut Bencher)) {
        let mut result = None;
        let mut b = Bencher {
            budget: budget(),
            result: &mut result,
        };
        f(&mut b);
        let (ns, iters) = result.expect("benchmark closure must call Bencher::iter");
        let m = Measurement {
            id,
            ns_per_iter: ns,
            elements,
            iters,
        };
        match m.elems_per_sec() {
            Some(eps) => println!(
                "bench {:<44} {:>14.1} ns/iter {:>12.3} Melem/s",
                m.id,
                m.ns_per_iter,
                eps / 1e6
            ),
            None => println!("bench {:<44} {:>14.1} ns/iter", m.id, m.ns_per_iter),
        }
        self.results.push(m);
    }

    /// All measurements so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Renders every measurement as a JSON array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, m) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"ns_per_iter\": {:.2}, \"iters\": {}, \"elements\": {}, \"elems_per_sec\": {}}}",
                m.id.replace('"', "'"),
                m.ns_per_iter,
                m.iters,
                m.elements.map_or("null".to_string(), |e| e.to_string()),
                m.elems_per_sec().map_or("null".to_string(), |e| format!("{e:.1}")),
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if let Ok(path) = std::env::var("M2X_BENCH_JSON") {
            if !self.results.is_empty() {
                if let Err(e) = std::fs::write(&path, self.to_json()) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
        }
    }
}

/// A group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to derive elements/second.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for criterion compatibility; the sampler is time-budgeted so
    /// the sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn elements(&self) -> Option<u64> {
        match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => Some(n),
            None => None,
        }
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        let elems = self.elements();
        self.parent.run_one(id, elems, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let elems = self.elements();
        self.parent.run_one(full, elems, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, criterion style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("M2X_BENCH_BUDGET_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].ns_per_iter > 0.0);
    }

    #[test]
    fn group_throughput_reported() {
        std::env::set_var("M2X_BENCH_BUDGET_MS", "5");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(100));
            g.bench_function("work", |b| b.iter(|| black_box((0..100u64).sum::<u64>())));
            g.finish();
        }
        let m = &c.results()[0];
        assert_eq!(m.id, "g/work");
        assert_eq!(m.elements, Some(100));
        assert!(m.elems_per_sec().unwrap() > 0.0);
        let json = c.to_json();
        assert!(json.contains("\"id\": \"g/work\""));
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
    }
}
