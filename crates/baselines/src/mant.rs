//! MX-M-ANT — M-ANT's "mathematically adaptive numerical types"
//! (HPCA '25), adapted to group-wise MX as in Tbl. 3.
//!
//! M-ANT generalizes ANT with a family of 16 data types per group plus a
//! scaling coefficient. We realize the family as power-law-warped 4-bit
//! grids `(i/7)^γ · 7` spanning uniform (γ=1) through strongly
//! outlier-weighted (γ≈2.8), alongside the four ANT base types, and search
//! a small coefficient set per group — matching the paper's description of
//! an 8-bit per-group coefficient at acceptable offline cost. Both
//! tensors adapt for the accuracy evaluation; the online activation
//! search cost is charged in the accelerator model (§6.2).

#[cfg(test)]
use crate::ant::best_book_quantize;
use crate::ant::e8m0_scale_for;
use m2x_formats::Codebook;
use m2x_tensor::Matrix;
use m2xfp::quantizer::fake_quant_rowwise;
use m2xfp::TensorQuantizer;

/// Builds the 16-type M-ANT library.
pub fn mant_codebooks() -> Vec<Codebook> {
    let mut books = crate::ant::ant_codebooks();
    // 12 warped grids between uniform and strongly convex.
    for i in 0..12 {
        let gamma = 1.15 + 0.15 * i as f32;
        let grid: Vec<f32> = (0..8).map(|j| (j as f32 / 7.0).powf(gamma) * 7.0).collect();
        books.push(Codebook::new(format!("warp{gamma:.2}"), grid).expect("valid grid"));
    }
    books
}

/// The per-group scaling coefficients searched on top of the covering E8M0
/// scale (the 8-bit coefficient of Tbl. 1, coarsened to 8 candidates —
/// a superset of ANT's two-exponent search).
pub const MANT_COEFFS: [f32; 8] = [0.5, 0.625, 0.75, 0.875, 1.0, 1.25, 1.5, 1.75];

/// MX-M-ANT: 16-type adaptive quantization with coefficient search for
/// both tensors.
#[derive(Debug, Clone)]
pub struct MxMant {
    group: usize,
    books: Vec<Codebook>,
}

impl MxMant {
    /// Group-32 configuration used in Tbl. 3.
    pub fn new() -> Self {
        MxMant {
            group: 32,
            books: mant_codebooks(),
        }
    }

    /// The type library (16 entries).
    pub fn books(&self) -> &[Codebook] {
        &self.books
    }

    fn quantize_group(&self, g: &[f32]) -> Vec<f32> {
        let amax = g.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let mut best: Option<(f64, Vec<f32>)> = None;
        for book in &self.books {
            let base = e8m0_scale_for(book, amax);
            for &c in &MANT_COEFFS {
                let s = base * c;
                let q: Vec<f32> = g.iter().map(|&v| book.quantize_scaled(v, s)).collect();
                let sse: f64 = g
                    .iter()
                    .zip(&q)
                    .map(|(&a, &b)| {
                        let d = (a - b) as f64;
                        d * d
                    })
                    .sum();
                if best.as_ref().is_none_or(|(t, _)| sse < *t) {
                    best = Some((sse, q));
                }
            }
        }
        best.expect("non-empty library").1
    }
}

impl Default for MxMant {
    fn default() -> Self {
        MxMant::new()
    }
}

impl TensorQuantizer for MxMant {
    fn name(&self) -> String {
        "MX-M-ANT".to_string()
    }

    fn weight_ebw(&self) -> f64 {
        // 4-bit elements + 8-bit scale + 4-bit type + 8-bit coefficient.
        4.0 + (8.0 + 4.0 + 8.0) / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        fake_quant_rowwise(w, self.group, |g| self.quantize_group(g))
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        fake_quant_rowwise(x, self.group, |g| self.quantize_group(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    fn sample(seed: u64) -> Matrix {
        let mut r = Xoshiro::seed(seed);
        Matrix::from_fn(8, 128, |_, _| r.laplace(1.0))
    }

    #[test]
    fn sixteen_types() {
        assert_eq!(mant_codebooks().len(), 16);
    }

    #[test]
    fn mant_weights_beat_ant_weights() {
        // Tbl. 3: MX-M-ANT < MX-ANT perplexity; more types + coefficient
        // search fit groups at least as well.
        let w = sample(8);
        let mant = nmse(
            w.as_slice(),
            MxMant::default().quantize_weights(&w).as_slice(),
        );
        let ant = nmse(
            w.as_slice(),
            crate::ant::MxAnt::default().quantize_weights(&w).as_slice(),
        );
        assert!(mant <= ant + 1e-12, "mant {mant} vs ant {ant}");
    }

    #[test]
    fn superset_of_ant_search_space() {
        // With coefficient 1.0 and the 4 base books present, every group's
        // error is <= the best-ANT-book error.
        let q = MxMant::default();
        let mut r = Xoshiro::seed(11);
        for _ in 0..20 {
            let g = r.vec_of(32, |r| r.laplace(1.0));
            let mq = q.quantize_group(&g);
            let (_, aq) = best_book_quantize(&crate::ant::ant_codebooks(), &g);
            let me: f64 = g
                .iter()
                .zip(&mq)
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum();
            let ae: f64 = g
                .iter()
                .zip(&aq)
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum();
            assert!(me <= ae + 1e-9);
        }
    }

    #[test]
    fn warped_grids_are_monotone() {
        for book in mant_codebooks() {
            let m = book.magnitudes();
            for w in m.windows(2) {
                assert!(w[0] < w[1], "{} not strictly ascending", book.name());
            }
        }
    }

    #[test]
    fn ebw_accounts_for_coefficient() {
        assert!((MxMant::default().weight_ebw() - 4.625).abs() < 1e-12);
    }
}
