//! MX+ (MICRO '25) — MXFP4 with a block-max sidecar: the group's maximum
//! element is additionally refined with extra mantissa bits stored in a
//! per-group metadata field (Tbl. 1: 5-bit index + 3-bit reserved per
//! group of 32).

use m2x_formats::{fp4, Minifloat, SpecialValues};
use m2x_tensor::Matrix;
use m2xfp::quantizer::fake_quant_rowwise;
use m2xfp::{ScaleRule, TensorQuantizer};

/// MX+: MXFP4 plus an E2M4 refinement of each group's maximum.
#[derive(Debug, Clone)]
pub struct MxPlus {
    group: usize,
    refined: Minifloat,
}

impl MxPlus {
    /// The group-32 configuration of Tbl. 1.
    pub fn new() -> Self {
        MxPlus {
            group: 32,
            // FP4's exponent range with 3 extra mantissa bits (the 3-bit
            // reserved field) -> E2M4.
            refined: Minifloat::new(2, 4, SpecialValues::None).expect("valid"),
        }
    }

    fn fake_quant_group(&self, g: &[f32]) -> Vec<f32> {
        let f4 = fp4();
        let amax = g.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let s = ScaleRule::Floor.shared_scale(amax, f4).value();
        let mut out: Vec<f32> = g.iter().map(|&v| f4.quantize(v / s) * s).collect();
        if amax > 0.0 {
            let mut idx = 0;
            for (i, v) in g.iter().enumerate() {
                if v.abs() > g[idx].abs() {
                    idx = i;
                }
            }
            out[idx] = self.refined.quantize(g[idx] / s) * s;
        }
        out
    }
}

impl Default for MxPlus {
    fn default() -> Self {
        MxPlus::new()
    }
}

impl TensorQuantizer for MxPlus {
    fn name(&self) -> String {
        "MX+".to_string()
    }

    fn weight_ebw(&self) -> f64 {
        // 4-bit elements + 8-bit scale + 8-bit sidecar (5-bit index + 3-bit
        // extra mantissa) per group.
        4.0 + (8.0 + 8.0) / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        fake_quant_rowwise(w, self.group, |g| self.fake_quant_group(g))
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        fake_quant_rowwise(x, self.group, |g| self.fake_quant_group(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    #[test]
    fn refines_only_the_block_max() {
        let mut g = vec![1.0f32; 32];
        g[17] = 5.3;
        let q = MxPlus::default().fake_quant_group(&g);
        // Block max refined beyond FP4 resolution (FP4 would give 6.0;
        // E2M4 gives 5.25).
        assert!((q[17] - 5.3).abs() < 0.2, "max {}", q[17]);
        assert_eq!(q[0], 1.0);
    }

    #[test]
    fn between_mxfp4_and_m2xfp() {
        let mut r = Xoshiro::seed(12);
        let x = Matrix::from_fn(8, 128, |_, _| r.laplace(1.0));
        let mx = nmse(
            x.as_slice(),
            crate::mx::MxQuantizer::mxfp4()
                .quantize_activations(&x)
                .as_slice(),
        );
        let plus = nmse(
            x.as_slice(),
            MxPlus::default().quantize_activations(&x).as_slice(),
        );
        assert!(plus < mx, "mx+ {plus} vs mxfp4 {mx}");
    }

    #[test]
    fn ebw_is_4_5() {
        assert!((MxPlus::default().weight_ebw() - 4.5).abs() < 1e-12);
    }
}
