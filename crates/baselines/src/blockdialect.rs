//! BlockDialect (Jang & Tambe, 2025) — block-wise fine-grained mixed-format
//! quantization: each group selects one of 16 "dialects" (4-bit value
//! grids) via a 4-bit index, with a power-of-two shared scale (Tbl. 1:
//! E5M0 scale, group 32, 4-bit index).
//!
//! The dialect book spans four exponent/mantissa splits (uniform E0M3
//! through power-of-two E3M0), each at four max-alignment factors, so the
//! grid can track both the shape and the exact magnitude of each block —
//! BlockDialect's efficient real-time decision applies to activations too.

use crate::ant::e8m0_scale_for;
use m2x_formats::Codebook;
use m2x_tensor::Matrix;
use m2xfp::quantizer::fake_quant_rowwise;
use m2xfp::TensorQuantizer;

/// Builds the 16-entry dialect book.
pub fn dialect_book() -> Vec<Codebook> {
    let bases: [(&str, Vec<f32>); 4] = [
        // E0M3: uniform 3-bit magnitudes.
        ("e0m3", (0..8).map(|i| i as f32).collect()),
        // E1M2: gentle curvature.
        ("e1m2", vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0]),
        // E2M1: the FP4 grid.
        ("e2m1", m2x_formats::fp4().values()),
        // E3M0: powers of two.
        ("e3m0", vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]),
    ];
    let mut book = Vec::with_capacity(16);
    for (name, grid) in bases {
        for (ai, align) in [1.0f32, 1.25, 1.5, 1.75].into_iter().enumerate() {
            let scaled: Vec<f32> = grid.iter().map(|v| v * align).collect();
            book.push(Codebook::new(format!("{name}-a{ai}"), scaled).expect("valid dialect"));
        }
    }
    book
}

/// BlockDialect: per-group dialect selection for weights *and* activations.
#[derive(Debug, Clone)]
pub struct BlockDialect {
    group: usize,
    book: Vec<Codebook>,
}

impl BlockDialect {
    /// The Tbl. 3 configuration (group 32).
    pub fn new() -> Self {
        BlockDialect {
            group: 32,
            book: dialect_book(),
        }
    }

    /// The dialect book (16 entries).
    pub fn book(&self) -> &[Codebook] {
        &self.book
    }

    fn quantize_group(&self, g: &[f32]) -> Vec<f32> {
        let amax = g.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let mut best: Option<(f64, Vec<f32>)> = None;
        for dialect in &self.book {
            let s = e8m0_scale_for(dialect, amax);
            let q: Vec<f32> = g.iter().map(|&v| dialect.quantize_scaled(v, s)).collect();
            let sse: f64 = g
                .iter()
                .zip(&q)
                .map(|(&a, &b)| {
                    let d = (a - b) as f64;
                    d * d
                })
                .sum();
            if best.as_ref().is_none_or(|(t, _)| sse < *t) {
                best = Some((sse, q));
            }
        }
        best.expect("non-empty book").1
    }
}

impl Default for BlockDialect {
    fn default() -> Self {
        BlockDialect::new()
    }
}

impl TensorQuantizer for BlockDialect {
    fn name(&self) -> String {
        "BlockDialect".to_string()
    }

    fn weight_ebw(&self) -> f64 {
        // 4-bit elements + 8-bit scale + 4-bit dialect index per group.
        4.0 + (8.0 + 4.0) / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        fake_quant_rowwise(w, self.group, |g| self.quantize_group(g))
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        fake_quant_rowwise(x, self.group, |g| self.quantize_group(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    fn sample(seed: u64) -> Matrix {
        let mut r = Xoshiro::seed(seed);
        Matrix::from_fn(8, 128, |_, _| r.laplace(1.0))
    }

    #[test]
    fn book_has_16_dialects() {
        assert_eq!(dialect_book().len(), 16);
    }

    #[test]
    fn beats_mxfp4_on_both_tensors() {
        // Tbl. 3: BlockDialect clearly improves over MXFP4.
        let x = sample(9);
        let bd = BlockDialect::default();
        let mx = crate::mx::MxQuantizer::mxfp4();
        let bd_w = nmse(x.as_slice(), bd.quantize_weights(&x).as_slice());
        let mx_w = nmse(x.as_slice(), mx.quantize_weights(&x).as_slice());
        assert!(bd_w < mx_w, "weights: {bd_w} vs {mx_w}");
        let bd_a = nmse(x.as_slice(), bd.quantize_activations(&x).as_slice());
        let mx_a = nmse(x.as_slice(), mx.quantize_activations(&x).as_slice());
        assert!(bd_a < mx_a, "activations: {bd_a} vs {mx_a}");
    }

    #[test]
    fn alignment_factors_track_block_max() {
        // A block max of 5·2^k is captured exactly by the 1.25-aligned FP4
        // dialect (6·1.25 = 7.5 covers; 4·1.25 = 5 hits the max).
        let mut g = vec![0.4f32; 32];
        g[0] = 5.0;
        let q = BlockDialect::default().quantize_group(&g);
        assert!((q[0] - 5.0).abs() < 0.26, "block max {} vs 5.0", q[0]);
    }

    #[test]
    fn ebw() {
        assert!((BlockDialect::default().weight_ebw() - 4.375).abs() < 1e-12);
    }
}
