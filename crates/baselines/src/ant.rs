//! MX-ANT — the ANT accelerator's adaptive numerical types (MICRO '22),
//! adapted to group-wise MX quantization as in the paper's Tbl. 3.
//!
//! ANT picks, per tensor/channel (here per group), the best-fitting 4-bit
//! type among **int4** (uniform), **flint4** (float-int hybrid: dense
//! mid-range, extended top range) and **PoT4** (powers of two), selected by
//! squared error. Both weights and activations use the adaptive types for
//! the accuracy evaluation (matching the Tbl. 3 perplexity gains); the
//! *cost* of the online activation search shows up in the accelerator
//! model instead (paper §6.2: "extending to activations is limited by
//! costly online search").

use m2x_formats::Codebook;
use m2x_tensor::Matrix;
use m2xfp::quantizer::fake_quant_rowwise;
use m2xfp::TensorQuantizer;

/// Builds the ANT type library (4-bit grids, sign-symmetric magnitudes).
pub fn ant_codebooks() -> Vec<Codebook> {
    vec![
        Codebook::new("int4", (0..=7).map(|i| i as f32).collect()).expect("valid"),
        // Flint: int-like near the middle, float-like (wider) at the top.
        Codebook::new("flint4", vec![0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0]).expect("valid"),
        Codebook::new("pot4", vec![0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]).expect("valid"),
        Codebook::new("fp4", m2x_formats::fp4().values()).expect("valid"),
    ]
}

/// Per-group E8M0 scale for a codebook: smallest power of two whose scaled
/// grid covers `amax`.
pub fn e8m0_scale_for(book: &Codebook, amax: f32) -> f32 {
    if amax <= 0.0 {
        return (m2x_formats::e8m0::MIN_EXP as f32).exp2();
    }
    let m = book.max_value();
    let mut e = (amax / m).log2().ceil() as i32;
    while (e as f32).exp2() * m < amax {
        e += 1;
    }
    while e > m2x_formats::e8m0::MIN_EXP && ((e - 1) as f32).exp2() * m >= amax {
        e -= 1;
    }
    m2x_formats::E8M0::from_exponent(e).value()
}

/// Quantizes one group with the best codebook from `books` (min SSE; ties
/// keep the earlier book). For each book both the covering exponent and the
/// one below (which may clip the max but refines the body — the floor-rule
/// trade-off) are searched, so the space supersets MXFP4. Returns
/// `(book_index, fake-quantized group)`.
pub fn best_book_quantize(books: &[Codebook], g: &[f32]) -> (usize, Vec<f32>) {
    let amax = g.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let mut best: Option<(f64, usize, Vec<f32>)> = None;
    for (bi, book) in books.iter().enumerate() {
        let s_cover = e8m0_scale_for(book, amax);
        for s in [s_cover, s_cover * 0.5] {
            let q: Vec<f32> = g.iter().map(|&v| book.quantize_scaled(v, s)).collect();
            let sse: f64 = g
                .iter()
                .zip(&q)
                .map(|(&a, &b)| {
                    let d = (a - b) as f64;
                    d * d
                })
                .sum();
            if best.as_ref().is_none_or(|(t, _, _)| sse < *t) {
                best = Some((sse, bi, q));
            }
        }
    }
    let (_, bi, q) = best.expect("non-empty library");
    (bi, q)
}

/// MX-ANT: type-adaptive weights and activations.
#[derive(Debug, Clone)]
pub struct MxAnt {
    group: usize,
    books: Vec<Codebook>,
}

impl MxAnt {
    /// Group-32 configuration used in Tbl. 3.
    pub fn new() -> Self {
        MxAnt {
            group: 32,
            books: ant_codebooks(),
        }
    }

    /// The type library.
    pub fn books(&self) -> &[Codebook] {
        &self.books
    }
}

impl Default for MxAnt {
    fn default() -> Self {
        MxAnt::new()
    }
}

impl TensorQuantizer for MxAnt {
    fn name(&self) -> String {
        "MX-ANT".to_string()
    }

    fn weight_ebw(&self) -> f64 {
        // 4-bit elements + 8-bit scale + 2-bit type index per group.
        4.0 + (8.0 + 2.0) / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        fake_quant_rowwise(w, self.group, |g| best_book_quantize(&self.books, g).1)
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        fake_quant_rowwise(x, self.group, |g| best_book_quantize(&self.books, g).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    fn sample(seed: u64) -> Matrix {
        let mut r = Xoshiro::seed(seed);
        Matrix::from_fn(8, 128, |_, _| r.laplace(1.0))
    }

    #[test]
    fn adaptive_weights_beat_mxfp4() {
        let w = sample(5);
        let ant = nmse(
            w.as_slice(),
            MxAnt::default().quantize_weights(&w).as_slice(),
        );
        let mx = nmse(
            w.as_slice(),
            crate::mx::MxQuantizer::mxfp4()
                .quantize_weights(&w)
                .as_slice(),
        );
        // The ANT search space (fp4 book × two exponents) supersets MXFP4's
        // floor rule, so per-group SSE can only improve.
        assert!(ant <= mx + 1e-12, "ant {ant} vs mxfp4 {mx}");
    }

    #[test]
    fn type_selection_tracks_distribution() {
        let books = ant_codebooks();
        // Uniform data favors int4.
        let uniform: Vec<f32> = (0..32).map(|i| (i as f32 - 16.0) / 2.3).collect();
        let (bi_u, _) = best_book_quantize(&books, &uniform);
        assert_eq!(books[bi_u].name(), "int4");
        // A mid-range body under a huge outlier favors a wide-range type
        // (PoT represents both 0.5 and 16 exactly; int4 must pick a side).
        let mut spiky = vec![0.5f32; 32];
        spiky[7] = 16.0;
        let (bi_s, _) = best_book_quantize(&books, &spiky);
        assert_ne!(books[bi_s].name(), "int4", "picked {}", books[bi_s].name());
    }

    #[test]
    fn scale_covers_amax() {
        let books = ant_codebooks();
        for book in &books {
            for amax in [0.001f32, 0.9, 1.0, 5.0, 117.0] {
                let s = e8m0_scale_for(book, amax);
                assert!(
                    book.max_value() * s >= amax * 0.9999,
                    "{} clips {amax}",
                    book.name()
                );
                // E8M0: power of two.
                assert_eq!(s.log2().fract(), 0.0);
            }
        }
    }

    #[test]
    fn activations_also_adapt() {
        let x = sample(6);
        let ant = nmse(
            x.as_slice(),
            MxAnt::default().quantize_activations(&x).as_slice(),
        );
        let mx = nmse(
            x.as_slice(),
            crate::mx::MxQuantizer::mxfp4()
                .quantize_activations(&x)
                .as_slice(),
        );
        assert!(ant <= mx + 1e-12, "ant {ant} vs mxfp4 {mx}");
    }

    #[test]
    fn zero_group_stable() {
        let books = ant_codebooks();
        let (_, q) = best_book_quantize(&books, &[0.0f32; 32]);
        assert!(q.iter().all(|&v| v == 0.0));
        assert!(e8m0_scale_for(&books[0], 0.0) > 0.0);
    }

    #[test]
    fn ebw_includes_type_index() {
        let q = MxAnt::default();
        assert!((q.weight_ebw() - 4.3125).abs() < 1e-12);
        assert!((q.activation_ebw() - 4.3125).abs() < 1e-12);
    }
}
