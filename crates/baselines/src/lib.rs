//! # m2x-baselines
//!
//! Every quantization format and algorithm scheme the M2XFP paper compares
//! against, implemented from scratch behind the shared
//! [`m2xfp::TensorQuantizer`] trait:
//!
//! **MX family (Fig. 1, Tbl. 2–3):**
//! * [`mx`] — generic block quantizer: MXFP4/MXFP6/MXFP8, MXINT8/MXINT4,
//!   FP4-with-FP16-scale, and the Fig. 3 max-preservation variant.
//! * [`nvfp`] — NVFP4 (FP8-E4M3 group scales + tensor scale) and M2-NVFP4
//!   (NVFP4 augmented with M2XFP metadata, Tbl. 6).
//! * [`smx`] — Shared Microexponents (SMX4/6/9, two-level scaling).
//! * [`msfp`] — Microsoft Floating Point (MSFP-12/16 block floating point).
//!
//! **Accelerator formats adapted to group-wise MX (Tbl. 1, Tbl. 3, Fig. 13):**
//! * [`ant`] — MX-ANT: per-group adaptive type (int4 / flint4 / pot4 / fp4).
//! * [`mant`] — MX-M-ANT: 16 mathematically-adaptive types + coefficient.
//! * [`olive`] — MX-OliVe: outlier–victim pair encoding.
//! * [`microscopiq`] — MicroScopiQ: outlier-aware inlier/outlier blocks.
//! * [`blockdialect`] — BlockDialect: 16-entry dialect book per group.
//! * [`bbal`] — BBAL: per-element 1-bit bidirectional exponent flag.
//! * [`mxplus`] — MX+: block-max sidecar refinement.
//!
//! **Algorithm schemes (Tbl. 7):**
//! * [`hadamard`] — fast Walsh–Hadamard transforms and rotation wrappers.
//! * [`quarot`] — QuaRot: randomized-Hadamard-rotated INT4.
//! * [`duquant`] — DuQuant: dual block rotation + zigzag permutation, INT4.
//! * [`gptq`] — MR-GPTQ: Hessian-based error-compensated rounding onto MX
//!   grids, plus the MR-GPTQ-M2XFP combination.

pub mod ant;
pub mod bbal;
pub mod blockdialect;
pub mod duquant;
pub mod gptq;
pub mod hadamard;
pub mod mant;
pub mod microscopiq;
pub mod msfp;
pub mod mx;
pub mod mxplus;
pub mod nvfp;
pub mod olive;
pub mod quarot;
pub mod smx;

pub use mx::MxQuantizer;
pub use nvfp::{M2Nvfp4, Nvfp4};

use m2xfp::TensorQuantizer;

/// The hardware-format lineup of Tbl. 2 (FP16 and M2XFP themselves live in
/// `m2xfp`): SMX4, MXFP4, NVFP4.
pub fn table2_formats() -> Vec<Box<dyn TensorQuantizer>> {
    vec![
        Box::new(smx::Smx::smx4()),
        Box::new(mx::MxQuantizer::mxfp4()),
        Box::new(nvfp::Nvfp4::default()),
    ]
}

/// The accelerator lineup of Tbl. 3: MXFP4, MX-ANT, MX-M-ANT, MX-OliVe,
/// MicroScopiQ, BlockDialect.
pub fn table3_formats() -> Vec<Box<dyn TensorQuantizer>> {
    vec![
        Box::new(mx::MxQuantizer::mxfp4()),
        Box::new(ant::MxAnt::default()),
        Box::new(mant::MxMant::default()),
        Box::new(olive::MxOlive::default()),
        Box::new(microscopiq::MicroScopiQ::default()),
        Box::new(blockdialect::BlockDialect::default()),
    ]
}
