//! NVFP4 — NVIDIA's microscaling variant with FP8 (E4M3) group scales and a
//! tensor-level rescale (paper §2.2) — and M2-NVFP4, the Tbl. 6 extension
//! that grafts M2XFP's metadata onto the NVFP4 base.

use m2x_formats::{fp4, fp6_e2m3, fp8_e4m3};
use m2x_tensor::Matrix;
use m2xfp::quantizer::fake_quant_rowwise;
use m2xfp::TensorQuantizer;

/// NVFP4: group 16, FP4 (E2M1) elements, FP8 (E4M3) per-group scale, FP32
/// tensor-level scale chosen so group scales stay within E4M3 range.
#[derive(Debug, Clone, Copy)]
pub struct Nvfp4 {
    group: usize,
}

impl Nvfp4 {
    /// The standard configuration (group 16).
    pub fn new() -> Self {
        Nvfp4 { group: 16 }
    }

    /// Group size.
    pub fn group(&self) -> usize {
        self.group
    }

    /// The NVIDIA recipe's tensor scale: maps the largest group scale onto
    /// the top of the E4M3 range.
    pub fn tensor_scale(global_amax: f32) -> f32 {
        if global_amax <= 0.0 {
            return 1.0;
        }
        let elem_max = fp4().max_value(); // 6
        let scale_max = fp8_e4m3().max_value(); // 448
        global_amax / (elem_max * scale_max)
    }

    /// Effective per-group scale (FP8-quantized group scale × tensor scale).
    pub fn group_scale(amax: f32, tensor_scale: f32) -> f32 {
        if amax <= 0.0 {
            return tensor_scale;
        }
        let elem_max = fp4().max_value();
        let s8 = fp8_e4m3().quantize(amax / (elem_max * tensor_scale));
        let s8 = if s8 > 0.0 {
            s8
        } else {
            fp8_e4m3().min_subnormal()
        };
        s8 * tensor_scale
    }

    fn fake_quant(&self, m: &Matrix) -> Matrix {
        let ts = Self::tensor_scale(m.max_abs());
        let f4 = fp4();
        fake_quant_rowwise(m, self.group, |g| {
            let amax = g.iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let s = Self::group_scale(amax, ts);
            g.iter().map(|&v| f4.quantize(v / s) * s).collect()
        })
    }
}

impl Default for Nvfp4 {
    fn default() -> Self {
        Nvfp4::new()
    }
}

impl TensorQuantizer for Nvfp4 {
    fn name(&self) -> String {
        "NVFP4".to_string()
    }

    fn weight_ebw(&self) -> f64 {
        // 4 + 8/16; the tensor-level FP32 scale amortizes to ~0.
        4.0 + 8.0 / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        self.fake_quant(w)
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        self.fake_quant(x)
    }
}

/// M2-NVFP4 (Tbl. 6): NVFP4 augmented with M2XFP metadata — Sg-EM-2bit on
/// subgroups of 4 for weights, Elem-EM-top1 for activations. With group 16
/// the metadata raises the effective bit width from 4.5 to 5 bits, as the
/// paper notes.
#[derive(Debug, Clone, Copy)]
pub struct M2Nvfp4 {
    group: usize,
    subgroup: usize,
}

impl M2Nvfp4 {
    /// The Tbl. 6 configuration: group 16, subgroup 4.
    pub fn new() -> Self {
        M2Nvfp4 {
            group: 16,
            subgroup: 4,
        }
    }
}

impl Default for M2Nvfp4 {
    fn default() -> Self {
        M2Nvfp4::new()
    }
}

impl TensorQuantizer for M2Nvfp4 {
    fn name(&self) -> String {
        "M2-NVFP4".to_string()
    }

    fn weight_ebw(&self) -> f64 {
        let n_sub = (self.group / self.subgroup) as f64;
        4.0 + (8.0 + 2.0 * n_sub) / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        let ts = Nvfp4::tensor_scale(w.max_abs());
        let f4 = fp4();
        fake_quant_rowwise(w, self.group, |g| {
            let amax = g.iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let s = Nvfp4::group_scale(amax, ts);
            // Sg-EM: per-subgroup multiplier search (Eq. 3 on the FP8 base).
            let mut out = Vec::with_capacity(g.len());
            for sg in g.chunks(self.subgroup) {
                let mut best: Option<(f64, Vec<f32>)> = None;
                for mult in m2xfp::weight::SG_MULTIPLIERS {
                    let eff = mult * s;
                    let q: Vec<f32> = sg.iter().map(|&v| f4.quantize(v / eff) * eff).collect();
                    let sse: f64 = sg
                        .iter()
                        .zip(&q)
                        .map(|(&a, &b)| {
                            let d = (a - b) as f64;
                            d * d
                        })
                        .sum();
                    if best.as_ref().is_none_or(|(t, _)| sse < *t) {
                        best = Some((sse, q));
                    }
                }
                out.extend(best.expect("candidates").1);
            }
            out
        })
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        let ts = Nvfp4::tensor_scale(x.max_abs());
        let f4 = fp4();
        let f6 = fp6_e2m3();
        fake_quant_rowwise(x, self.group, |g| {
            let amax = g.iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let s = Nvfp4::group_scale(amax, ts);
            let codes: Vec<u8> = g.iter().map(|&v| f4.encode(v / s)).collect();
            let mut out: Vec<f32> = codes.iter().map(|&c| f4.decode(c) * s).collect();
            for (sg_idx, sg_codes) in codes.chunks(self.subgroup).enumerate() {
                let local = m2x_formats::tables::top1_index(sg_codes);
                let idx = sg_idx * self.subgroup + local;
                out[idx] = f6.quantize(g[idx] / s) * s;
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;
    use m2xfp::quantizer::TensorQuantizer;

    fn sample(seed: u64) -> Matrix {
        let mut r = Xoshiro::seed(seed);
        Matrix::from_fn(16, 128, |_, _| r.laplace(1.0))
    }

    #[test]
    fn ebw_values() {
        assert!((Nvfp4::default().weight_ebw() - 4.5).abs() < 1e-12);
        // Paper §6.4: metadata raises NVFP4 from 4.5 to 5 bits.
        assert!((M2Nvfp4::default().weight_ebw() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn nvfp4_beats_mxfp4() {
        // The precise FP8 scale narrows the block-max misalignment.
        let x = sample(1);
        let nv = nmse(
            x.as_slice(),
            Nvfp4::default().quantize_activations(&x).as_slice(),
        );
        let mx = nmse(
            x.as_slice(),
            crate::mx::MxQuantizer::mxfp4()
                .quantize_activations(&x)
                .as_slice(),
        );
        assert!(nv < mx, "nvfp4 {nv} vs mxfp4 {mx}");
    }

    #[test]
    fn m2_nvfp4_beats_nvfp4() {
        // Tbl. 6's finding, on both tensors of a W4A4 pair.
        let x = sample(2);
        let base = nmse(
            x.as_slice(),
            Nvfp4::default().quantize_activations(&x).as_slice(),
        );
        let act = nmse(
            x.as_slice(),
            M2Nvfp4::default().quantize_activations(&x).as_slice(),
        );
        let wt = nmse(
            x.as_slice(),
            M2Nvfp4::default().quantize_weights(&x).as_slice(),
        );
        assert!(act < base, "elem-em act {act} vs {base}");
        assert!(wt < base, "sg-em weights {wt} vs {base}");
    }

    #[test]
    fn tensor_scale_keeps_group_scales_in_fp8_range() {
        for global in [1e-6f32, 1.0, 100.0, 3e38] {
            let ts = Nvfp4::tensor_scale(global);
            let needed = global / (6.0 * ts);
            assert!(
                needed <= 448.0 * 1.0001,
                "global {global}: needed scale {needed} exceeds E4M3 max"
            );
        }
    }

    #[test]
    fn zero_tensor_stable() {
        let z = Matrix::zeros(2, 32);
        let y = Nvfp4::default().quantize_activations(&z);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
        let y = M2Nvfp4::default().quantize_weights(&z);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn small_groups_with_tiny_values() {
        // Group scales below E4M3's subnormal floor must not collapse to 0.
        let x = Matrix::from_fn(1, 16, |_, c| (c as f32 + 1.0) * 1e-9);
        let y = Nvfp4::default().quantize_activations(&x);
        assert!(y.as_slice().iter().any(|&v| v != 0.0));
    }
}
