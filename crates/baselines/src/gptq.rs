//! MR-GPTQ — GPTQ-style Hessian-compensated rounding onto microscaling
//! grids (Egiazarian et al., 2025), the algorithm-scheme baseline of
//! Tbl. 7, plus its combination with the M2XFP weight grid.
//!
//! GPTQ quantizes weight columns in order; after rounding column `j`, the
//! rounding error is propagated into the not-yet-quantized columns through
//! the inverse Hessian `H⁻¹ = (Xᵀ X + λI)⁻¹` of the calibration
//! activations, greedily minimizing `‖X·W − X·Q(W)‖²`. "MR" (microscaling
//! rounding) means the grid is an MX format with scales frozen from the
//! original weights.

use m2x_formats::fp4;
use m2x_tensor::linalg::{cholesky_upper, gram_with_damping, inverse_spd};
use m2x_tensor::Matrix;
use m2xfp::{M2xfpConfig, ScaleRule};

/// Which frozen weight grid GPTQ rounds onto.
#[derive(Debug, Clone, Copy)]
pub enum GptqGrid {
    /// Plain MXFP4: per-group E8M0 scale (group 32).
    Mxfp4(ScaleRule),
    /// The M2XFP weight format: Sg-EM-2bit subgroup scales with adaptive
    /// bias (the Tbl. 7 "MR-GPTQ-M2XFP" combination).
    M2xfp(M2xfpConfig),
}

/// MR-GPTQ configuration.
#[derive(Debug, Clone, Copy)]
pub struct GptqConfig {
    /// Group size along the reduction dimension.
    pub group: usize,
    /// Relative diagonal damping (GPTQ's `percdamp`).
    pub damp: f64,
    /// Grid to round onto.
    pub grid: GptqGrid,
    /// Process columns in descending Hessian-diagonal order (GPTQ's
    /// `act_order`) — essential when activation channels have very unequal
    /// energy (LLM outlier channels), otherwise error compensation pushes
    /// error into the heavy columns.
    pub act_order: bool,
}

impl Default for GptqConfig {
    fn default() -> Self {
        GptqConfig {
            group: 32,
            damp: 0.01,
            grid: GptqGrid::Mxfp4(ScaleRule::Floor),
            act_order: true,
        }
    }
}

/// Per-element effective scales, frozen from the original row.
fn frozen_scales(row: &[f32], cfg: &GptqConfig) -> Vec<f32> {
    let f4 = fp4();
    let mut scales = Vec::with_capacity(row.len());
    match cfg.grid {
        GptqGrid::Mxfp4(rule) => {
            for g in row.chunks(cfg.group) {
                let amax = g.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let s = rule.shared_scale(amax, f4).value();
                scales.extend(std::iter::repeat_n(s, g.len()));
            }
        }
        GptqGrid::M2xfp(mcfg) => {
            let gc = mcfg.group_config();
            for g in row.chunks(mcfg.group_size) {
                let wg = m2xfp::weight::quantize_group(
                    g,
                    gc,
                    mcfg.scale_rule,
                    mcfg.adaptive_weight_scale,
                );
                for (sg_idx, sg) in g.chunks(mcfg.subgroup_size).enumerate() {
                    let eff = wg.subgroup_scale(sg_idx);
                    scales.extend(std::iter::repeat_n(eff, sg.len()));
                }
            }
        }
    }
    scales
}

/// Quantizes a transposed weight matrix `W^T [N, K]` with MR-GPTQ against
/// calibration activations `X [M, K]`. Returns the fake-quantized weights.
///
/// # Errors
///
/// Returns an error string when the damped Hessian is not positive
/// definite (degenerate calibration data).
pub fn mr_gptq_quantize(
    w_t: &Matrix,
    x_calib: &Matrix,
    cfg: &GptqConfig,
) -> Result<Matrix, String> {
    let k = w_t.cols();
    assert_eq!(
        x_calib.cols(),
        k,
        "calibration width must match the reduction dimension"
    );
    let f4 = fp4();

    let h = gram_with_damping(x_calib, cfg.damp);

    // act_order: visit columns by descending Hessian diagonal so the heavy
    // (outlier-channel) columns are quantized before error accumulates.
    let perm: Vec<usize> = if cfg.act_order {
        let mut p: Vec<usize> = (0..k).collect();
        p.sort_by(|&a, &b| {
            h[b * k + b]
                .partial_cmp(&h[a * k + a])
                .expect("finite Hessian")
        });
        p
    } else {
        (0..k).collect()
    };
    // Permute the Hessian into processing order.
    let mut hp = vec![0.0f64; k * k];
    for (i, &pi) in perm.iter().enumerate() {
        for (j, &pj) in perm.iter().enumerate() {
            hp[i * k + j] = h[pi * k + pj];
        }
    }

    let hinv = inverse_spd(&hp, k).map_err(|e| e.to_string())?;
    let u = cholesky_upper(&hinv, k).map_err(|e| e.to_string())?;

    let mut out = Matrix::zeros(w_t.rows(), k);
    for r in 0..w_t.rows() {
        let orig = w_t.row(r);
        // Scales frozen in the ORIGINAL grouping, then carried through the
        // permutation with their columns.
        let scales = frozen_scales(orig, cfg);
        let mut w: Vec<f64> = perm.iter().map(|&p| orig[p] as f64).collect();
        let orow = out.row_mut(r);
        for j in 0..k {
            let s = scales[perm[j]];
            let q = (f4.quantize(w[j] as f32 / s) * s) as f64;
            orow[perm[j]] = q as f32;
            let d = u[j * k + j];
            if d.abs() < 1e-30 {
                continue;
            }
            let err = (w[j] - q) / d;
            for l in j + 1..k {
                w[l] -= err * u[j * k + l];
            }
        }
    }
    Ok(out)
}

/// Round-to-nearest onto the same frozen grid (the non-compensated
/// reference GPTQ must beat).
pub fn rtn_quantize(w_t: &Matrix, cfg: &GptqConfig) -> Matrix {
    let f4 = fp4();
    let mut out = Matrix::zeros(w_t.rows(), w_t.cols());
    for r in 0..w_t.rows() {
        let orig = w_t.row(r);
        let scales = frozen_scales(orig, cfg);
        let orow = out.row_mut(r);
        for (j, (&v, &s)) in orig.iter().zip(&scales).enumerate() {
            orow[j] = f4.quantize(v / s) * s;
        }
    }
    out
}

/// Proxy-loss helper: `‖X·Wᵀ − X·Qᵀ‖²/‖X·Wᵀ‖²`, the quantity GPTQ
/// minimizes.
pub fn gemm_nmse(x: &Matrix, w_t: &Matrix, q_t: &Matrix) -> f64 {
    let y_ref = x.matmul(&w_t.transpose());
    let y_q = x.matmul(&q_t.transpose());
    m2x_tensor::stats::nmse(y_ref.as_slice(), y_q.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::Xoshiro;

    fn calib(m: usize, k: usize, seed: u64) -> Matrix {
        let mut r = Xoshiro::seed(seed);
        Matrix::from_fn(m, k, |_, c| {
            // Mildly correlated channels with one outlier channel.
            let v = r.gaussian();
            if c % 17 == 0 {
                v * 4.0
            } else {
                v
            }
        })
    }

    fn weights(n: usize, k: usize, seed: u64) -> Matrix {
        let mut r = Xoshiro::seed(seed);
        Matrix::from_fn(n, k, |_, _| r.laplace(0.7))
    }

    #[test]
    fn gptq_beats_rtn_on_proxy_loss() {
        let k = 64;
        let x = calib(96, k, 1);
        let wt = weights(8, k, 2);
        let cfg = GptqConfig::default();
        let q_gptq = mr_gptq_quantize(&wt, &x, &cfg).unwrap();
        let q_rtn = rtn_quantize(&wt, &cfg);
        let e_gptq = gemm_nmse(&x, &wt, &q_gptq);
        let e_rtn = gemm_nmse(&x, &wt, &q_rtn);
        assert!(
            e_gptq < e_rtn,
            "gptq {e_gptq} must beat rtn {e_rtn} on its own objective"
        );
    }

    #[test]
    fn outputs_live_on_the_frozen_grid() {
        let k = 64;
        let x = calib(80, k, 3);
        let wt = weights(4, k, 4);
        let cfg = GptqConfig::default();
        let q = mr_gptq_quantize(&wt, &x, &cfg).unwrap();
        let f4 = m2x_formats::fp4();
        for r in 0..q.rows() {
            let scales = super::frozen_scales(wt.row(r), &cfg);
            for (j, &v) in q.row(r).iter().enumerate() {
                let snapped = f4.quantize(v / scales[j]) * scales[j];
                assert!(
                    (snapped - v).abs() < 1e-6,
                    "({r},{j}): {v} not on grid (scale {})",
                    scales[j]
                );
            }
        }
    }

    #[test]
    fn m2xfp_grid_composition_no_worse() {
        // Tbl. 7: MR-GPTQ-M2XFP ≤ MR-GPTQ (incremental gain).
        let k = 64;
        let x = calib(96, k, 5);
        let wt = weights(8, k, 6);
        let base = GptqConfig::default();
        let m2 = GptqConfig {
            grid: GptqGrid::M2xfp(M2xfpConfig::default()),
            ..base
        };
        let e_base = gemm_nmse(&x, &wt, &mr_gptq_quantize(&wt, &x, &base).unwrap());
        let e_m2 = gemm_nmse(&x, &wt, &mr_gptq_quantize(&wt, &x, &m2).unwrap());
        assert!(
            e_m2 < e_base * 1.05,
            "m2xfp grid {e_m2} should not regress vs mxfp4 grid {e_base}"
        );
    }

    #[test]
    fn identity_hessian_reduces_to_rtn() {
        // With uncorrelated, equal-power calibration the compensation terms
        // are tiny; GPTQ stays close to RTN error (sanity bound, not
        // exact equality because sampling noise correlates mildly).
        let k = 32;
        let x = calib(4096, k, 7); // large M -> H ≈ diagonal
        let wt = weights(4, k, 8);
        let cfg = GptqConfig::default();
        let e_gptq = gemm_nmse(&x, &wt, &mr_gptq_quantize(&wt, &x, &cfg).unwrap());
        let e_rtn = gemm_nmse(&x, &wt, &rtn_quantize(&wt, &cfg));
        assert!(e_gptq <= e_rtn * 1.02);
    }

    #[test]
    fn rejects_mismatched_calibration() {
        let x = calib(10, 32, 9);
        let wt = weights(2, 64, 10);
        let result = std::panic::catch_unwind(|| {
            let _ = mr_gptq_quantize(&wt, &x, &GptqConfig::default());
        });
        assert!(result.is_err());
    }
}
