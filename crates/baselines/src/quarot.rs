//! QuaRot (NeurIPS '24) — outlier-free 4-bit inference via randomized
//! Hadamard rotations (Tbl. 7: INT4, group 32).
//!
//! The rotation spreads outliers across the hidden dimension, after which
//! plain group-wise INT4 with an FP16 scale suffices. We model exactly the
//! W4A4 path the paper compares against: both operands rotated along K,
//! quantized, and evaluated in the original space.

use crate::hadamard::{RotatedQuantizer, RotationKind};
use crate::mx::{ElementCodec, MxQuantizer, ScaleKind};
use m2x_formats::int::IntCodec;
use m2x_tensor::Matrix;
use m2xfp::TensorQuantizer;

/// The QuaRot quantizer: randomized Hadamard + INT4 (group 32, FP16 scale).
pub struct QuaRot {
    inner: RotatedQuantizer<MxQuantizer>,
}

impl QuaRot {
    /// The Tbl. 7 configuration.
    pub fn new(seed: u64) -> Self {
        let int4 = MxQuantizer::new(
            "INT4-g32",
            32,
            ElementCodec::Int(IntCodec::new(4)),
            ScaleKind::Fp16,
        );
        QuaRot {
            inner: RotatedQuantizer::new("QuaRot", int4, RotationKind::Quarot, seed),
        }
    }
}

impl Default for QuaRot {
    fn default() -> Self {
        QuaRot::new(0x5157_0001)
    }
}

impl TensorQuantizer for QuaRot {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn weight_ebw(&self) -> f64 {
        self.inner.weight_ebw()
    }

    fn activation_ebw(&self) -> f64 {
        self.inner.activation_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        self.inner.quantize_weights(w)
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        self.inner.quantize_activations(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    /// Outlier-channel data: the distribution rotations are built for.
    fn outlier_data(seed: u64) -> Matrix {
        let mut r = Xoshiro::seed(seed);
        // Columns 0..4 are outlier channels (as in LLM activations).
        Matrix::from_fn(16, 128, |_, c| {
            let base = r.gaussian() * 0.2;
            if c < 4 {
                base * 40.0
            } else {
                base
            }
        })
    }

    #[test]
    fn rotation_beats_unrotated_int4_on_outlier_channels() {
        let x = outlier_data(3);
        let rotated = QuaRot::default();
        let plain = MxQuantizer::new(
            "INT4-g32",
            32,
            ElementCodec::Int(IntCodec::new(4)),
            ScaleKind::Fp16,
        );
        // End-to-end GEMM error against a weight matrix.
        let mut r = Xoshiro::seed(9);
        let wt = Matrix::from_fn(32, 128, |_, _| r.laplace(0.5));
        let y_ref = x.matmul(&wt.transpose());
        let err = |q: &dyn TensorQuantizer| {
            let y = q
                .quantize_activations(&x)
                .matmul(&q.quantize_weights(&wt).transpose());
            nmse(y_ref.as_slice(), y.as_slice())
        };
        let e_rot = err(&rotated);
        let e_plain = err(&plain);
        assert!(e_rot < e_plain, "quarot {e_rot} vs plain int4 {e_plain}");
    }

    #[test]
    fn gemm_invariance_holds_through_fake_quant() {
        // With an identity "quantizer" the rotated pipeline must reproduce
        // the exact GEMM; with a real quantizer the error must stay small.
        let x = outlier_data(5);
        let mut r = Xoshiro::seed(11);
        let wt = Matrix::from_fn(8, 128, |_, _| r.laplace(0.5));
        let y_ref = x.matmul(&wt.transpose());
        let q = QuaRot::default();
        let y = q
            .quantize_activations(&x)
            .matmul(&q.quantize_weights(&wt).transpose());
        assert!(nmse(y_ref.as_slice(), y.as_slice()) < 0.05);
    }
}
