//! MicroScopiQ (ISCA '25) — outlier-aware microscaling with inlier/outlier
//! block separation, the paper's primary accelerator baseline.
//!
//! Weights: per group, outliers (heavy tail beyond a σ-threshold) are kept
//! at 8-bit FP precision; to make room, the *least significant* element of
//! the outlier's µblock is pruned (MicroScopiQ's prune-and-shift), and the
//! inlier scale is derived from the inlier maximum. Structural metadata
//! (permutation list, identifiers, µblock scale) costs ~48 bits per
//! 128-element block (Tbl. 1: "24-bit permutation list, 16-bit identifier,
//! 8-bit MXScale").
//!
//! Activations: MXINT — the naive integer activation path the paper calls
//! out as MicroScopiQ's weakness (§6.2). Matching the accelerator model
//! (85 % of activation tensors at 8 bits to hold accuracy), the accuracy
//! path uses MXINT8.

use m2x_formats::{fp4, fp8_e4m3};
use m2x_tensor::Matrix;
use m2xfp::quantizer::fake_quant_rowwise;
use m2xfp::{ScaleRule, TensorQuantizer};

/// MicroScopiQ with group 32 weights (µblock 8) and MXINT4 activations.
#[derive(Debug, Clone, Copy)]
pub struct MicroScopiQ {
    group: usize,
    ublock: usize,
    /// Outlier threshold in group standard deviations.
    sigma: f32,
    /// Cap on outliers per group.
    max_outliers: usize,
}

impl MicroScopiQ {
    /// The Tbl. 3 configuration.
    pub fn new() -> Self {
        MicroScopiQ {
            group: 32,
            ublock: 8,
            sigma: 4.0,
            max_outliers: 2,
        }
    }

    /// Outlier indices: elements beyond `sigma` standard deviations,
    /// largest first, capped.
    pub fn outlier_indices(&self, g: &[f32]) -> Vec<usize> {
        let n = g.len() as f64;
        let mean: f64 = g.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var: f64 = g
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let thr = (self.sigma as f64) * var.sqrt();
        let mut idx: Vec<usize> = (0..g.len())
            .filter(|&i| (g[i] as f64 - mean).abs() > thr && g[i] != 0.0)
            .collect();
        idx.sort_by(|&a, &b| g[b].abs().partial_cmp(&g[a].abs()).expect("finite"));
        idx.truncate(self.max_outliers);
        idx
    }

    fn fake_quant_weights_group(&self, g: &[f32]) -> Vec<f32> {
        let f4 = fp4();
        let f8 = fp8_e4m3();
        let outliers = self.outlier_indices(g);
        let is_outlier = |i: usize| outliers.contains(&i);

        let inlier_max = g
            .iter()
            .enumerate()
            .filter(|(i, _)| !is_outlier(*i))
            .fold(0.0f32, |m, (_, v)| m.max(v.abs()));
        let s = ScaleRule::Floor.shared_scale(inlier_max, f4).value();

        let mut out: Vec<f32> = g.iter().map(|&v| f4.quantize(v / s) * s).collect();
        for &o in &outliers {
            out[o] = f8.quantize(g[o] / s) * s;
            // Prune the least-significant inlier of the outlier's µblock to
            // make room (prune-and-shift).
            let ub = o / self.ublock;
            let lo = ub * self.ublock;
            let hi = (lo + self.ublock).min(g.len());
            let prune = (lo..hi)
                .filter(|&i| !is_outlier(i) && i != o)
                .min_by(|&a, &b| g[a].abs().partial_cmp(&g[b].abs()).expect("finite"));
            if let Some(p) = prune {
                out[p] = 0.0;
            }
        }
        out
    }
}

impl Default for MicroScopiQ {
    fn default() -> Self {
        MicroScopiQ::new()
    }
}

impl TensorQuantizer for MicroScopiQ {
    fn name(&self) -> String {
        "MicroScopiQ".to_string()
    }

    fn weight_ebw(&self) -> f64 {
        // 4-bit elements + 8-bit scale per 32 + 48-bit structural metadata
        // per 128 elements (Tbl. 1).
        4.0 + 8.0 / self.group as f64 + 48.0 / 128.0
    }

    fn activation_ebw(&self) -> f64 {
        8.0 + 8.0 / self.group as f64
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        fake_quant_rowwise(w, self.group, |g| self.fake_quant_weights_group(g))
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        // 85 % of activation tensors at MXINT8, 15 % at MXINT4 (the same
        // split the accelerator model charges for); realized here as a
        // deterministic row mix with the same proportions.
        let int8 = crate::mx::MxQuantizer::mxint8().quantize_activations(x);
        let int4 = crate::mx::MxQuantizer::mxint4().quantize_activations(x);
        let mut out = int8;
        for r in 0..x.rows() {
            if r % 20 < 3 {
                out.row_mut(r).copy_from_slice(int4.row(r));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    fn heavy(seed: u64) -> Matrix {
        let mut r = Xoshiro::seed(seed);
        Matrix::from_fn(8, 128, |_, _| {
            if r.chance(0.01) {
                r.laplace(1.0) * 8.0
            } else {
                r.laplace(0.5)
            }
        })
    }

    #[test]
    fn finds_sigma_outliers() {
        let mut g = vec![0.3f32; 32];
        g[5] = -9.0;
        let o = MicroScopiQ::default().outlier_indices(&g);
        assert_eq!(o, vec![5]);
    }

    #[test]
    fn weights_beat_mxfp4_on_outlier_heavy_data() {
        let w = heavy(3);
        let ms = nmse(
            w.as_slice(),
            MicroScopiQ::default().quantize_weights(&w).as_slice(),
        );
        let mx = nmse(
            w.as_slice(),
            crate::mx::MxQuantizer::mxfp4()
                .quantize_weights(&w)
                .as_slice(),
        );
        assert!(ms < mx, "microscopiq {ms} vs mxfp4 {mx}");
    }

    #[test]
    fn pruning_zeroes_smallest_in_ublock() {
        let mut g = vec![0.5f32; 32];
        g[3] = 20.0; // outlier in µblock 0
        g[6] = 0.01; // smallest in µblock 0 -> pruned
        let q = MicroScopiQ::default().fake_quant_weights_group(&g);
        assert_eq!(q[6], 0.0);
        assert!((q[3] - 20.0).abs() < 1.0);
    }

    #[test]
    fn weight_ebw_reflects_structural_metadata() {
        let e = MicroScopiQ::default().weight_ebw();
        assert!((e - 4.625).abs() < 1e-12, "{e}");
    }

    #[test]
    fn activations_are_mostly_mxint8() {
        let mut r = Xoshiro::seed(4);
        let x = Matrix::from_fn(40, 128, |_, _| r.laplace(0.8));
        let a = MicroScopiQ::default().quantize_activations(&x);
        let int8 = crate::mx::MxQuantizer::mxint8().quantize_activations(&x);
        let int4 = crate::mx::MxQuantizer::mxint4().quantize_activations(&x);
        let mut n8 = 0;
        for r in 0..x.rows() {
            if a.row(r) == int8.row(r) {
                n8 += 1;
            } else {
                assert_eq!(a.row(r), int4.row(r), "row {r} is neither INT8 nor INT4");
            }
        }
        // 85/15 split over the deterministic row mix.
        assert!(n8 * 100 >= x.rows() * 80, "{n8}/{} rows at INT8", x.rows());
    }
}
