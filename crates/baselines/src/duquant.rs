//! DuQuant (NeurIPS '24) — distributing outliers via dual transformation:
//! block rotations + zigzag permutation + a second block rotation, then
//! INT4 group quantization (Tbl. 7: INT4, group 32).

use crate::hadamard::{RotatedQuantizer, RotationKind};
use crate::mx::{ElementCodec, MxQuantizer, ScaleKind};
use m2x_formats::int::IntCodec;
use m2x_tensor::Matrix;
use m2xfp::TensorQuantizer;

/// The DuQuant quantizer: dual permuted block rotations + INT4 (group 32).
pub struct DuQuant {
    inner: RotatedQuantizer<MxQuantizer>,
}

impl DuQuant {
    /// The Tbl. 7 configuration.
    pub fn new(seed: u64) -> Self {
        let int4 = MxQuantizer::new(
            "INT4-g32",
            32,
            ElementCodec::Int(IntCodec::new(4)),
            ScaleKind::Fp16,
        );
        DuQuant {
            inner: RotatedQuantizer::new("DuQuant", int4, RotationKind::Duquant, seed),
        }
    }
}

impl Default for DuQuant {
    fn default() -> Self {
        DuQuant::new(0xD009_0002)
    }
}

impl TensorQuantizer for DuQuant {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn weight_ebw(&self) -> f64 {
        self.inner.weight_ebw()
    }

    fn activation_ebw(&self) -> f64 {
        self.inner.activation_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        self.inner.quantize_weights(w)
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        self.inner.quantize_activations(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    #[test]
    fn block_rotation_tames_outlier_channels() {
        // End-to-end GEMM error: raw NMSE on the tensor is dominated by the
        // outlier energy itself, so measure what actually matters downstream.
        let mut r = Xoshiro::seed(21);
        let x = Matrix::from_fn(16, 128, |_, c| {
            let base = r.gaussian() * 0.2;
            if c == 17 || c == 63 {
                base * 50.0
            } else {
                base
            }
        });
        let wt = Matrix::from_fn(32, 128, |_, _| r.laplace(0.5));
        let plain = MxQuantizer::new(
            "INT4-g32",
            32,
            ElementCodec::Int(IntCodec::new(4)),
            ScaleKind::Fp16,
        );
        let y_ref = x.matmul(&wt.transpose());
        let err = |q: &dyn TensorQuantizer| {
            let y = q
                .quantize_activations(&x)
                .matmul(&q.quantize_weights(&wt).transpose());
            nmse(y_ref.as_slice(), y.as_slice())
        };
        let e_du = err(&DuQuant::default());
        let e_plain = err(&plain);
        assert!(e_du < e_plain, "duquant {e_du} vs plain {e_plain}");
    }

    #[test]
    fn works_on_non_power_of_two_dims() {
        let mut r = Xoshiro::seed(22);
        let x = Matrix::from_fn(4, 96, |_, _| r.laplace(1.0));
        let y = DuQuant::default().quantize_activations(&x);
        assert_eq!(y.cols(), 96);
        assert!(nmse(x.as_slice(), y.as_slice()) < 0.1);
    }
}
