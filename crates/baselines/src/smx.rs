//! Shared Microexponents (SMX) — the two-level shared-scale family of
//! Rouhani et al. (ISCA '23), called SMX in the paper.
//!
//! A group of `k1 = 16` elements shares an 8-bit power-of-two scale; within
//! it, pairs (`k2 = 2`) share one extra exponent bit that can drop the
//! pair's scale by one binade. Elements are symmetric integers (INT3 for
//! SMX4). The paper shows SMX4 collapsing at W4A4 (Tbl. 2) because the
//! pair-shared exponent amplifies error when pair magnitudes differ.

use m2x_formats::int::IntCodec;
use m2x_tensor::Matrix;
use m2xfp::quantizer::fake_quant_rowwise;
use m2xfp::TensorQuantizer;

/// An SMX format (SMX4/SMX6/SMX9).
#[derive(Debug, Clone, Copy)]
pub struct Smx {
    name: &'static str,
    elem: IntCodec,
    group: usize,
    pair: usize,
}

impl Smx {
    /// SMX4: INT3 elements, group 16, pair 2 (the evaluated variant).
    pub fn smx4() -> Self {
        Smx {
            name: "SMX4",
            elem: IntCodec::new(3),
            group: 16,
            pair: 2,
        }
    }

    /// SMX6: INT5 elements.
    pub fn smx6() -> Self {
        Smx {
            name: "SMX6",
            elem: IntCodec::new(5),
            group: 16,
            pair: 2,
        }
    }

    /// SMX9: INT8 elements.
    pub fn smx9() -> Self {
        Smx {
            name: "SMX9",
            elem: IntCodec::new(8),
            group: 16,
            pair: 2,
        }
    }

    fn fake_quant_group(&self, g: &[f32]) -> Vec<f32> {
        let amax = g.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if amax == 0.0 {
            return vec![0.0; g.len()];
        }
        let maxc = self.elem.max_code() as f32;
        // Group scale: smallest power of two with maxc·s >= amax.
        let mut e = (amax / maxc).log2().ceil() as i32;
        while (e as f32).exp2() * maxc < amax {
            e += 1;
        }
        let s_hi = (e as f32).exp2();
        let s_lo = ((e - 1) as f32).exp2();
        let mut out = Vec::with_capacity(g.len());
        for pair in g.chunks(self.pair) {
            let pmax = pair.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            // The 1-bit microexponent: drop one binade when the whole pair
            // fits at the finer scale.
            let s = if pmax <= maxc * s_lo { s_lo } else { s_hi };
            for &v in pair {
                out.push(self.elem.quantize(v, s));
            }
        }
        out
    }
}

impl TensorQuantizer for Smx {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn weight_ebw(&self) -> f64 {
        // element bits + 1 shared bit per pair + 8-bit group scale.
        self.elem.bits() as f64
            + (self.group / self.pair) as f64 / self.group as f64
            + 8.0 / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        fake_quant_rowwise(w, self.group, |g| self.fake_quant_group(g))
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        fake_quant_rowwise(x, self.group, |g| self.fake_quant_group(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    fn sample(seed: u64) -> Matrix {
        let mut r = Xoshiro::seed(seed);
        Matrix::from_fn(8, 128, |_, _| r.laplace(1.0))
    }

    #[test]
    fn smx4_ebw_is_4_5() {
        // 3 + 8/16 + 1/2 = 4.0: sign+mantissa 3, pair bit 0.5, scale 0.5.
        assert!((Smx::smx4().weight_ebw() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pair_exponent_helps_small_pairs() {
        // A pair much smaller than the group max uses the finer scale.
        let mut g = vec![0.1f32; 16];
        g[0] = 3.0; // group max -> s_hi = 1
        let q = Smx::smx4().fake_quant_group(&g);
        // Pair (2,3) holds 0.1s; at s_lo = 0.5 they quantize to 0, at finer
        // granularity the error is at most 0.25.
        assert!((q[2] - 0.1).abs() <= 0.25);
    }

    #[test]
    fn smx4_much_worse_than_mxfp4() {
        // The Tbl. 2 collapse: SMX4's INT3 + pair sharing loses badly.
        let x = sample(1);
        let smx = nmse(
            x.as_slice(),
            Smx::smx4().quantize_activations(&x).as_slice(),
        );
        let mx = nmse(
            x.as_slice(),
            crate::mx::MxQuantizer::mxfp4()
                .quantize_activations(&x)
                .as_slice(),
        );
        assert!(smx > 2.0 * mx, "smx {smx} vs mxfp4 {mx}");
    }

    #[test]
    fn wider_smx_variants_improve() {
        let x = sample(2);
        let e4 = nmse(
            x.as_slice(),
            Smx::smx4().quantize_activations(&x).as_slice(),
        );
        let e6 = nmse(
            x.as_slice(),
            Smx::smx6().quantize_activations(&x).as_slice(),
        );
        let e9 = nmse(
            x.as_slice(),
            Smx::smx9().quantize_activations(&x).as_slice(),
        );
        assert!(e6 < e4 && e9 < e6);
    }

    #[test]
    fn never_clips_group_max() {
        let g: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.77).collect();
        let q = Smx::smx4().fake_quant_group(&g);
        let amax_in = g.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let amax_out = q.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        // The INT3 grid is coarse (step up to 2·amax/3 from the ceil
        // scale), so RNE can overshoot by up to a third — but never clips
        // below, and never runs away.
        assert!(
            amax_out <= amax_in * 4.0 / 3.0 + 1e-6,
            "{amax_out} vs {amax_in}"
        );
        assert!(
            amax_out >= amax_in * 2.0 / 3.0 - 1e-6,
            "{amax_out} vs {amax_in}"
        );
    }
}
