//! Fast Walsh–Hadamard transforms and the rotation wrapper behind
//! QuaRot/DuQuant-style computational-invariance schemes.
//!
//! For an orthonormal rotation `R` (applied along the GEMM reduction
//! dimension K), `Y = X·W = (X R)(Rᵀ W)`, so quantizing in the rotated
//! space and measuring error in the original space is exact end-to-end
//! modeling. Rotations here are block-diagonal randomized Hadamards:
//! `v → (v H) ⊙ d` per block, with `d` a seeded ±1 diagonal.

use m2x_tensor::{Matrix, Xoshiro};
use m2xfp::TensorQuantizer;

/// In-place fast Walsh–Hadamard transform, orthonormal (scaled by 1/√n).
///
/// # Panics
///
/// Panics unless `v.len()` is a power of two.
pub fn fwht_normalized(v: &mut [f32]) {
    let n = v.len();
    assert!(n.is_power_of_two(), "FWHT length must be a power of two");
    let mut h = 1;
    while h < n {
        for i in (0..n).step_by(h * 2) {
            for j in i..i + h {
                let x = v[j];
                let y = v[j + h];
                v[j] = x + y;
                v[j + h] = x - y;
            }
        }
        h *= 2;
    }
    let norm = 1.0 / (n as f32).sqrt();
    for x in v.iter_mut() {
        *x *= norm;
    }
}

/// One stage of a block rotation: optional permutation, then per-block
/// randomized Hadamard (H then ±1 signs).
#[derive(Debug, Clone)]
pub struct RotationStage {
    block: usize,
    signs: Vec<f32>,
    perm: Option<Vec<usize>>,
}

impl RotationStage {
    /// Creates a stage with `block`-sized Hadamards (block must be a power
    /// of two), seeded sign flips, and an optional pre-permutation over the
    /// whole width `dim`.
    pub fn new(dim: usize, block: usize, seed: u64, permute: bool) -> Self {
        assert!(block.is_power_of_two(), "block must be a power of two");
        assert_eq!(dim % block, 0, "block must divide the dimension");
        let mut r = Xoshiro::seed(seed);
        let signs: Vec<f32> = (0..dim)
            .map(|_| if r.chance(0.5) { -1.0 } else { 1.0 })
            .collect();
        let perm = permute.then(|| r.permutation(dim));
        RotationStage { block, signs, perm }
    }

    /// Applies the stage to a row vector.
    pub fn apply(&self, v: &mut [f32]) {
        if let Some(p) = &self.perm {
            let old = v.to_vec();
            for (i, &src) in p.iter().enumerate() {
                v[i] = old[src];
            }
        }
        for chunk in v.chunks_mut(self.block) {
            fwht_normalized(chunk);
        }
        for (x, s) in v.iter_mut().zip(&self.signs) {
            *x *= s;
        }
    }

    /// Applies the inverse (signs, inverse Hadamard = Hadamard, inverse
    /// permutation).
    pub fn apply_inverse(&self, v: &mut [f32]) {
        for (x, s) in v.iter_mut().zip(&self.signs) {
            *x *= s;
        }
        for chunk in v.chunks_mut(self.block) {
            fwht_normalized(chunk);
        }
        if let Some(p) = &self.perm {
            let old = v.to_vec();
            for (i, &src) in p.iter().enumerate() {
                v[src] = old[i];
            }
        }
    }
}

/// A composition of rotation stages applied along matrix rows.
#[derive(Debug, Clone)]
pub struct Rotation {
    stages: Vec<RotationStage>,
}

impl Rotation {
    /// Builds a rotation from stages (applied in order).
    pub fn new(stages: Vec<RotationStage>) -> Self {
        Rotation { stages }
    }

    /// QuaRot-style: one full-width randomized Hadamard (block = largest
    /// power of two dividing `dim`).
    pub fn quarot(dim: usize, seed: u64) -> Self {
        let block = largest_pow2_divisor(dim);
        Rotation::new(vec![RotationStage::new(dim, block, seed, false)])
    }

    /// DuQuant-style: zigzag permutation + block-16 Hadamard, twice.
    pub fn duquant(dim: usize, seed: u64) -> Self {
        let block = largest_pow2_divisor(dim).min(16);
        Rotation::new(vec![
            RotationStage::new(dim, block, seed, true),
            RotationStage::new(dim, block, seed ^ 0xD0D0_D0D0, true),
        ])
    }

    /// Rotates every row of a matrix.
    pub fn apply_rows(&self, m: &Matrix) -> Matrix {
        let mut out = m.clone();
        for r in 0..out.rows() {
            let mut row = out.row(r).to_vec();
            for s in &self.stages {
                s.apply(&mut row);
            }
            out.row_mut(r).copy_from_slice(&row);
        }
        out
    }

    /// Inverse-rotates every row.
    pub fn apply_rows_inverse(&self, m: &Matrix) -> Matrix {
        let mut out = m.clone();
        for r in 0..out.rows() {
            let mut row = out.row(r).to_vec();
            for s in self.stages.iter().rev() {
                s.apply_inverse(&mut row);
            }
            out.row_mut(r).copy_from_slice(&row);
        }
        out
    }
}

fn largest_pow2_divisor(n: usize) -> usize {
    assert!(n > 0);
    1 << n.trailing_zeros()
}

/// Wraps any [`TensorQuantizer`] in a rotation: quantize in rotated space,
/// report fake-quantized tensors in the original space, so downstream GEMM
/// error measurement models the rotated pipeline exactly.
pub struct RotatedQuantizer<Q> {
    name: String,
    inner: Q,
    seed: u64,
    kind: RotationKind,
}

/// Which rotation construction to use (dimension-dependent, so built
/// lazily per tensor width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationKind {
    /// Full-width randomized Hadamard (QuaRot).
    Quarot,
    /// Dual permuted block rotation (DuQuant).
    Duquant,
}

impl<Q: TensorQuantizer> RotatedQuantizer<Q> {
    /// Creates a rotated wrapper.
    pub fn new(name: impl Into<String>, inner: Q, kind: RotationKind, seed: u64) -> Self {
        RotatedQuantizer {
            name: name.into(),
            inner,
            seed,
            kind,
        }
    }

    fn rotation(&self, dim: usize) -> Rotation {
        match self.kind {
            RotationKind::Quarot => Rotation::quarot(dim, self.seed),
            RotationKind::Duquant => Rotation::duquant(dim, self.seed),
        }
    }
}

impl<Q: TensorQuantizer> TensorQuantizer for RotatedQuantizer<Q> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn weight_ebw(&self) -> f64 {
        self.inner.weight_ebw()
    }

    fn activation_ebw(&self) -> f64 {
        self.inner.activation_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        let rot = self.rotation(w.cols());
        let rotated = rot.apply_rows(w);
        let q = self.inner.quantize_weights(&rotated);
        rot.apply_rows_inverse(&q)
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        let rot = self.rotation(x.cols());
        let rotated = rot.apply_rows(x);
        let q = self.inner.quantize_activations(&rotated);
        rot.apply_rows_inverse(&q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::max_abs_err;

    #[test]
    fn fwht_self_inverse() {
        let orig: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut v = orig.clone();
        fwht_normalized(&mut v);
        fwht_normalized(&mut v);
        assert!(max_abs_err(&orig, &v) < 1e-5);
    }

    #[test]
    fn fwht_preserves_norm() {
        let mut v: Vec<f32> = (0..128).map(|i| (i as f32 * 0.73).cos()).collect();
        let n0: f32 = v.iter().map(|x| x * x).sum();
        fwht_normalized(&mut v);
        let n1: f32 = v.iter().map(|x| x * x).sum();
        assert!((n0 - n1).abs() / n0 < 1e-5);
    }

    #[test]
    fn stage_roundtrip_with_permutation() {
        let s = RotationStage::new(64, 16, 7, true);
        let orig: Vec<f32> = (0..64).map(|i| (i as f32 * 1.1).sin()).collect();
        let mut v = orig.clone();
        s.apply(&mut v);
        s.apply_inverse(&mut v);
        assert!(max_abs_err(&orig, &v) < 1e-5);
    }

    #[test]
    fn rotation_preserves_gemm() {
        // (X R)(Rᵀ Wᵀᵀ)… end-to-end: rotating both operands along K leaves
        // X·Wᵀ unchanged.
        let x = Matrix::from_fn(4, 64, |r, c| ((r * 64 + c) as f32 * 0.13).sin());
        let wt = Matrix::from_fn(5, 64, |r, c| ((r * 64 + c) as f32 * 0.29).cos());
        let rot = Rotation::quarot(64, 3);
        let y0 = x.matmul(&wt.transpose());
        let y1 = rot.apply_rows(&x).matmul(&rot.apply_rows(&wt).transpose());
        assert!(max_abs_err(y0.as_slice(), y1.as_slice()) < 1e-3);
    }

    #[test]
    fn rotation_flattens_outliers() {
        // The whole point of QuaRot: a spiky row becomes dense and
        // near-Gaussian, shrinking the max/std ratio.
        let mut row = vec![0.01f32; 128];
        row[5] = 10.0;
        let x = Matrix::from_vec(1, 128, row);
        let rot = Rotation::quarot(128, 1);
        let xr = rot.apply_rows(&x);
        assert!(xr.max_abs() < 2.0, "rotated max {}", xr.max_abs());
    }

    #[test]
    fn duquant_dimension_handling() {
        let rot = Rotation::duquant(96, 2); // 96 = 32·3: block 16 fits? 96 % 16 == 0 ✓
        let x = Matrix::from_fn(2, 96, |r, c| ((r + c) as f32 * 0.21).sin());
        let back = rot.apply_rows_inverse(&rot.apply_rows(&x));
        assert!(max_abs_err(x.as_slice(), back.as_slice()) < 1e-5);
    }
}
