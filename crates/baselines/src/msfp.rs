//! Microsoft Floating Point (MSFP) — classic block floating point from the
//! Brainwave project (paper Fig. 1): a group shares an 8-bit exponent and
//! each element stores sign + mantissa.
//!
//! MSFP-12 = 4-bit elements (sign + 3 mantissa) + 8-bit shared exponent;
//! MSFP-16 = 8-bit elements (sign + 7 mantissa) + 8-bit shared exponent.
//! The names count element bits plus scale bits.

use m2x_tensor::Matrix;
use m2xfp::quantizer::fake_quant_rowwise;
use m2xfp::TensorQuantizer;

/// An MSFP (block floating point) format.
#[derive(Debug, Clone, Copy)]
pub struct Msfp {
    name: &'static str,
    man_bits: u32,
    group: usize,
}

impl Msfp {
    /// MSFP-12: sign + 3 mantissa bits, bounding-box (group) of 8.
    pub fn msfp12() -> Self {
        Msfp {
            name: "MSFP-12",
            man_bits: 3,
            group: 8,
        }
    }

    /// MSFP-16: sign + 7 mantissa bits, group of 8.
    pub fn msfp16() -> Self {
        Msfp {
            name: "MSFP-16",
            man_bits: 7,
            group: 8,
        }
    }

    fn fake_quant_group(&self, g: &[f32]) -> Vec<f32> {
        let amax = g.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if amax == 0.0 {
            return vec![0.0; g.len()];
        }
        // Shared exponent = exponent of the block max; mantissas are
        // fixed-point fractions of 2^(E+1) so the max is representable.
        let e = m2xfp::scale::floor_log2(amax);
        let max_code = (1u32 << self.man_bits) - 1;
        let step = ((e + 1 - self.man_bits as i32) as f32).exp2();
        g.iter()
            .map(|&v| {
                let c = (v / step).round_ties_even();
                let c = c.clamp(-(max_code as f32), max_code as f32);
                c * step
            })
            .collect()
    }
}

impl TensorQuantizer for Msfp {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn weight_ebw(&self) -> f64 {
        1.0 + self.man_bits as f64 + 8.0 / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        fake_quant_rowwise(w, self.group, |g| self.fake_quant_group(g))
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        fake_quant_rowwise(x, self.group, |g| self.fake_quant_group(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    fn sample(seed: u64) -> Matrix {
        let mut r = Xoshiro::seed(seed);
        Matrix::from_fn(8, 64, |_, _| r.laplace(1.0))
    }

    #[test]
    fn names_count_bits() {
        assert!((Msfp::msfp12().weight_ebw() - 5.0).abs() < 1e-12); // 4 + 8/8
        assert!((Msfp::msfp16().weight_ebw() - 9.0).abs() < 1e-12); // 8 + 8/8
    }

    #[test]
    fn block_max_representable() {
        let g = [5.3f32, 0.2, -1.0, 0.0, 0.7, 2.2, -0.4, 1.1];
        for f in [Msfp::msfp12(), Msfp::msfp16()] {
            let q = f.fake_quant_group(&g);
            let rel = (q[0] - 5.3f32).abs() / 5.3;
            assert!(rel < 0.1, "{}: {} vs 5.3", f.name, q[0]);
        }
    }

    #[test]
    fn msfp16_beats_msfp12() {
        let x = sample(3);
        let e12 = nmse(
            x.as_slice(),
            Msfp::msfp12().quantize_activations(&x).as_slice(),
        );
        let e16 = nmse(
            x.as_slice(),
            Msfp::msfp16().quantize_activations(&x).as_slice(),
        );
        assert!(e16 < e12 / 4.0, "e12={e12} e16={e16}");
    }

    #[test]
    fn uniform_grid_within_group() {
        // BFP has a uniform grid: quantized values are multiples of the step.
        let g = [1.0f32, 0.33, 0.77, -0.5, 0.9, 0.11, -0.2, 0.6];
        let q = Msfp::msfp12().fake_quant_group(&g);
        let step = 2f32.powi(1 - 3);
        for v in q {
            let m = v / step;
            assert!((m - m.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_group() {
        let q = Msfp::msfp12().fake_quant_group(&[0.0; 8]);
        assert_eq!(q, vec![0.0; 8]);
    }
}
