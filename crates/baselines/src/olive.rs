//! MX-OliVe — OliVe's outlier–victim pair encoding (ISCA '23), adapted to
//! group-wise MX as in Tbl. 3.
//!
//! OliVe stores an outlier at high precision by *sacrificing its neighbor*
//! (the "victim"): the victim's code slot is repurposed for the outlier's
//! extra bits and the victim itself becomes zero. Effective tensor-wise,
//! the scheme degrades group-wise (the paper's observation): victims cost
//! real signal inside small groups, and outliers are frequent enough in
//! LLM tensors that MX-OliVe can fall below plain MXFP4.

use m2x_formats::{fp4, fp8_e5m2};
use m2x_tensor::Matrix;
use m2xfp::quantizer::fake_quant_rowwise;
use m2xfp::{ScaleRule, TensorQuantizer};

/// MX-OliVe: outlier–victim pairs inside MX groups (both tensors).
#[derive(Debug, Clone, Copy)]
pub struct MxOlive {
    group: usize,
    /// Outlier threshold in group standard deviations.
    sigma: f32,
    /// Cap on outliers per group (each costs one victim).
    max_outliers: usize,
}

impl MxOlive {
    /// Group-32 configuration used in Tbl. 3.
    pub fn new() -> Self {
        MxOlive {
            group: 32,
            sigma: 3.0,
            max_outliers: 4,
        }
    }

    /// Identifies outlier indices: elements beyond `sigma` group standard
    /// deviations, largest first, capped at `max_outliers`.
    pub fn outlier_indices(&self, g: &[f32]) -> Vec<usize> {
        let n = g.len() as f64;
        let var: f64 = g.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() / n;
        let thr = self.sigma as f64 * var.sqrt();
        let mut idx: Vec<usize> = (0..g.len())
            .filter(|&i| (g[i] as f64).abs() > thr && g[i] != 0.0)
            .collect();
        idx.sort_by(|&a, &b| g[b].abs().partial_cmp(&g[a].abs()).expect("finite"));
        idx.truncate(self.max_outliers);
        idx
    }

    fn fake_quant_group(&self, g: &[f32]) -> Vec<f32> {
        let f4 = fp4();
        let f8 = fp8_e5m2();
        let outliers = self.outlier_indices(g);
        let is_outlier = |i: usize| outliers.contains(&i);

        // Victims: OliVe's memory alignment pairs element 2i with 2i+1, and
        // the outlier's *pair partner* is sacrificed unconditionally — even
        // if it is itself large. This is exactly the group-wise failure the
        // paper describes ("sacrifices neighbors"): adjacent outliers,
        // frequent in LLMs, destroy each other.
        let mut victims: Vec<usize> = Vec::new();
        for &o in &outliers {
            let partner = o ^ 1;
            if partner < g.len() && !victims.contains(&partner) && !outliers.contains(&partner) {
                victims.push(partner);
            } else if partner < g.len() && outliers.contains(&partner) {
                // Two outliers in one pair: the larger survives, the other
                // is victimized.
                let loser = if g[o].abs() >= g[partner].abs() {
                    partner
                } else {
                    o
                };
                if !victims.contains(&loser) {
                    victims.push(loser);
                }
            }
        }

        // Group-wise MX adaptation keeps the standard E8M0 scale from the
        // *full* block maximum (the MX datapath is unchanged; OliVe only
        // re-encodes outliers). Outliers gain FP8 mantissa precision at the
        // same scale; inliers see no benefit — which is why victims make
        // the scheme a net loss group-wise (§6.2).
        let amax = g.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let _ = is_outlier;
        let s = ScaleRule::Floor.shared_scale(amax, f4).value();

        let mut out: Vec<f32> = g.iter().map(|&v| f4.quantize(v / s) * s).collect();
        for &o in &outliers {
            // 8-bit range-oriented "abfloat" encoding at the inlier scale
            // (E5M2: wide exponent range, as OliVe's adaptive-bias float).
            out[o] = f8.quantize(g[o] / s) * s;
        }
        for &v in &victims {
            out[v] = 0.0;
        }
        out
    }

    /// Victim indices for a group (exposed for tests/analysis).
    pub fn victim_indices(&self, g: &[f32]) -> Vec<usize> {
        let outliers = self.outlier_indices(g);
        let mut victims = Vec::new();
        for &o in &outliers {
            let partner = o ^ 1;
            if partner < g.len() && !victims.contains(&partner) && !outliers.contains(&partner) {
                victims.push(partner);
            } else if partner < g.len() && outliers.contains(&partner) {
                let loser = if g[o].abs() >= g[partner].abs() {
                    partner
                } else {
                    o
                };
                if !victims.contains(&loser) {
                    victims.push(loser);
                }
            }
        }
        victims
    }
}

impl Default for MxOlive {
    fn default() -> Self {
        MxOlive::new()
    }
}

impl TensorQuantizer for MxOlive {
    fn name(&self) -> String {
        "MX-OliVe".to_string()
    }

    fn weight_ebw(&self) -> f64 {
        // Outliers reuse victim slots: still 4 bits/element + scale.
        4.0 + 8.0 / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        fake_quant_rowwise(w, self.group, |g| self.fake_quant_group(g))
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        fake_quant_rowwise(x, self.group, |g| self.fake_quant_group(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_single_outlier() {
        let mut g = vec![0.5f32; 32];
        g[9] = 8.0;
        let o = MxOlive::default().outlier_indices(&g);
        assert_eq!(o, vec![9]);
    }

    #[test]
    fn no_outlier_in_uniform_group() {
        let g: Vec<f32> = (0..32).map(|i| (i as f32 + 1.0) / 8.0).collect();
        assert!(MxOlive::default().outlier_indices(&g).is_empty());
    }

    #[test]
    fn victim_is_zeroed_and_outlier_precise() {
        let mut g = vec![0.5f32; 32];
        g[9] = 8.0;
        let q = MxOlive::default().fake_quant_group(&g);
        // Outlier gets FP8 mantissa precision at the group scale.
        assert!((q[9] - 8.0).abs() < 0.5, "outlier {}", q[9]);
        // Its pair partner became the victim.
        assert_eq!(q[8], 0.0);
        // The MX scale is unchanged (full block max), so inliers stay as
        // coarse as plain MXFP4 — OliVe's group-wise weakness.
        let mx = crate::mx::MxQuantizer::mxfp4().fake_quantize_group(&g);
        assert_eq!(q[0], mx[0]);
    }

    #[test]
    fn outlier_cap_respected() {
        let mut g = vec![0.01f32; 32];
        for (k, i) in [0usize, 5, 12, 20, 27, 30].iter().enumerate() {
            g[*i] = 100.0 * 4f32.powi(k as i32);
        }
        let o = MxOlive::default().outlier_indices(&g);
        assert!(o.len() <= 4);
    }

    #[test]
    fn victims_hurt_dense_groups() {
        // When the "outlier" carries real neighbors, zeroing them costs
        // accuracy relative to MXFP4 — the group-wise failure mode.
        let mut g: Vec<f32> = (0..32).map(|i| ((i as f32) * 0.73).sin()).collect();
        g[9] = 40.0;
        let olive = MxOlive::default().fake_quant_group(&g);
        // The outlier's pair partner (8, since 9^1 = 8) is sacrificed even
        // though it carried real signal.
        assert_eq!(olive[8], 0.0);
        assert_ne!(g[8], 0.0);
    }

    #[test]
    fn adjacent_outliers_destroy_each_other() {
        // The group-wise catastrophe: two outliers in one aligned pair —
        // only the larger survives.
        let mut g = vec![0.2f32; 32];
        g[6] = 30.0;
        g[7] = -28.0;
        let olive = MxOlive::default();
        let victims = olive.victim_indices(&g);
        assert!(victims.contains(&7), "victims {victims:?}");
        let q = olive.fake_quant_group(&g);
        assert_eq!(q[7], 0.0, "the smaller adjacent outlier must be zeroed");
        assert!((q[6] - 30.0).abs() < 3.0, "outlier kept at {}", q[6]);
    }
}
