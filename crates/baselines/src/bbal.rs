//! BBAL (DAC '25) — bidirectional block floating point: INT3 elements with
//! a per-element 1-bit flag that shifts the element between two scales
//! (Tbl. 1: group 32, E5M0 scale, INT3 data, 1-bit element flag).

use m2x_formats::int::IntCodec;
use m2x_tensor::Matrix;
use m2xfp::quantizer::fake_quant_rowwise;
use m2xfp::TensorQuantizer;

/// BBAL: INT3 + per-element scale-select flag.
#[derive(Debug, Clone, Copy)]
pub struct Bbal {
    group: usize,
    elem: IntCodec,
    /// Binades between the coarse and fine scales.
    shift: i32,
}

impl Bbal {
    /// The Tbl. 1 configuration (group 32, INT3, flag shifting 2 binades).
    pub fn new() -> Self {
        Bbal {
            group: 32,
            elem: IntCodec::new(3),
            shift: 2,
        }
    }

    fn fake_quant_group(&self, g: &[f32]) -> Vec<f32> {
        let amax = g.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if amax == 0.0 {
            return vec![0.0; g.len()];
        }
        let maxc = self.elem.max_code() as f32;
        let mut e = (amax / maxc).log2().ceil() as i32;
        while (e as f32).exp2() * maxc < amax {
            e += 1;
        }
        let s_hi = (e as f32).exp2();
        let s_lo = ((e - self.shift) as f32).exp2();
        g.iter()
            .map(|&v| {
                // Per-element 1-bit choice: the nearer of the two grids.
                let q_hi = self.elem.quantize(v, s_hi);
                let q_lo = self.elem.quantize(v, s_lo);
                if (q_lo - v).abs() <= (q_hi - v).abs() {
                    q_lo
                } else {
                    q_hi
                }
            })
            .collect()
    }
}

impl Default for Bbal {
    fn default() -> Self {
        Bbal::new()
    }
}

impl TensorQuantizer for Bbal {
    fn name(&self) -> String {
        "BBAL".to_string()
    }

    fn weight_ebw(&self) -> f64 {
        // 3-bit element + 1-bit flag + 8-bit scale per group.
        3.0 + 1.0 + 8.0 / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        fake_quant_rowwise(w, self.group, |g| self.fake_quant_group(g))
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        fake_quant_rowwise(x, self.group, |g| self.fake_quant_group(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;
    use m2x_tensor::Xoshiro;

    #[test]
    fn small_elements_use_fine_scale() {
        let mut g = vec![0.05f32; 32];
        g[0] = 3.0; // pins s_hi = 1, s_lo = 0.25
        let q = Bbal::default().fake_quant_group(&g);
        // 0.05 at s_lo=0.25 -> 0; at s_hi=1 -> 0. Both zero... use a value
        // that distinguishes: 0.3 at fine scale -> 0.25, at coarse -> 0.
        let mut g2 = vec![0.3f32; 32];
        g2[0] = 3.0;
        let q2 = Bbal::default().fake_quant_group(&g2);
        assert!((q2[1] - 0.25).abs() < 1e-6, "got {}", q2[1]);
        assert_eq!(q[0], 3.0);
    }

    #[test]
    fn beats_plain_int3_bfp() {
        let mut r = Xoshiro::seed(4);
        let x = Matrix::from_fn(8, 128, |_, _| r.laplace(1.0));
        let bbal = nmse(
            x.as_slice(),
            Bbal::default().quantize_activations(&x).as_slice(),
        );
        // SMX4 is INT3 with only pair-level shifting; BBAL's per-element
        // flag must do at least as well.
        let smx = nmse(
            x.as_slice(),
            crate::smx::Smx::smx4().quantize_activations(&x).as_slice(),
        );
        assert!(bbal < smx, "bbal {bbal} vs smx {smx}");
    }

    #[test]
    fn ebw_is_4_25() {
        assert!((Bbal::default().weight_ebw() - 4.25).abs() < 1e-12);
    }
}
