//! Generic block ("microscaling") quantizer covering the OCP MX family and
//! its close relatives: an element codec (minifloat or integer) plus a
//! shared per-group scale (E8M0 power of two, or FP16 as in classic
//! group-wise quantization).
//!
//! This single struct instantiates MXFP4, MXFP6 (both element types), MXFP8
//! (both element types), MXINT8/MXINT4, the "FP4" reference of Figs. 2–3
//! (FP4 elements with an FP16 group scale), and the Fig. 3 max-preservation
//! variant that keeps each group's maximum in FP16.

use m2x_formats::half::quantize_f16;
use m2x_formats::int::IntCodec;
use m2x_formats::{fp4, fp6_e2m3, fp6_e3m2, fp8_e4m3, fp8_e5m2, Minifloat};
use m2x_tensor::Matrix;
use m2xfp::quantizer::fake_quant_rowwise;
use m2xfp::{ScaleRule, TensorQuantizer};

/// Element codec of an MX-style format.
#[derive(Debug, Clone)]
pub enum ElementCodec {
    /// A minifloat grid (FP4/FP6/FP8).
    Mini(Minifloat),
    /// A symmetric integer grid (MXINT).
    Int(IntCodec),
}

impl ElementCodec {
    /// Quantizes a scale-normalized value onto the element grid.
    pub fn quantize(&self, v: f32) -> f32 {
        match self {
            ElementCodec::Mini(m) => m.quantize(v),
            ElementCodec::Int(i) => i.quantize_code(v) as f32,
        }
    }

    /// Largest representable magnitude.
    pub fn max_value(&self) -> f32 {
        match self {
            ElementCodec::Mini(m) => m.max_value(),
            ElementCodec::Int(i) => i.max_code() as f32,
        }
    }

    /// Storage bits per element.
    pub fn bits(&self) -> u32 {
        match self {
            ElementCodec::Mini(m) => m.total_bits(),
            ElementCodec::Int(i) => i.bits(),
        }
    }
}

/// Shared-scale flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleKind {
    /// Power-of-two E8M0 scale derived with a [`ScaleRule`] (the MX way).
    E8m0(ScaleRule),
    /// FP16 scale `amax / elem_max` (classic group-wise quantization; the
    /// paper's "FP4" reference point).
    Fp16,
}

/// A generic MX-style block quantizer.
#[derive(Debug, Clone)]
pub struct MxQuantizer {
    name: String,
    group: usize,
    elem: ElementCodec,
    scale: ScaleKind,
    preserve_max_fp16: bool,
}

impl MxQuantizer {
    /// Creates a custom MX-style format.
    pub fn new(
        name: impl Into<String>,
        group: usize,
        elem: ElementCodec,
        scale: ScaleKind,
    ) -> Self {
        assert!(group > 0);
        MxQuantizer {
            name: name.into(),
            group,
            elem,
            scale,
            preserve_max_fp16: false,
        }
    }

    /// OCP MXFP4: FP4 (E2M1) elements, E8M0 floor scale, group 32.
    pub fn mxfp4() -> Self {
        MxQuantizer::new(
            "MXFP4",
            32,
            ElementCodec::Mini(fp4().clone()),
            ScaleKind::E8m0(ScaleRule::Floor),
        )
    }

    /// MXFP4 with a non-default scale rule (Table 8).
    pub fn mxfp4_with_rule(rule: ScaleRule) -> Self {
        MxQuantizer::new(
            format!("MXFP4-{}", rule.name()),
            32,
            ElementCodec::Mini(fp4().clone()),
            ScaleKind::E8m0(rule),
        )
    }

    /// OCP MXFP6 with E2M3 elements.
    pub fn mxfp6_e2m3() -> Self {
        MxQuantizer::new(
            "MXFP6(E2M3)",
            32,
            ElementCodec::Mini(fp6_e2m3().clone()),
            ScaleKind::E8m0(ScaleRule::Floor),
        )
    }

    /// OCP MXFP6 with E3M2 elements.
    pub fn mxfp6_e3m2() -> Self {
        MxQuantizer::new(
            "MXFP6(E3M2)",
            32,
            ElementCodec::Mini(fp6_e3m2().clone()),
            ScaleKind::E8m0(ScaleRule::Floor),
        )
    }

    /// OCP MXFP8 with E4M3 elements.
    pub fn mxfp8_e4m3() -> Self {
        MxQuantizer::new(
            "MXFP8(E4M3)",
            32,
            ElementCodec::Mini(fp8_e4m3().clone()),
            ScaleKind::E8m0(ScaleRule::Floor),
        )
    }

    /// OCP MXFP8 with E5M2 elements.
    pub fn mxfp8_e5m2() -> Self {
        MxQuantizer::new(
            "MXFP8(E5M2)",
            32,
            ElementCodec::Mini(fp8_e5m2().clone()),
            ScaleKind::E8m0(ScaleRule::Floor),
        )
    }

    /// OCP MXINT8.
    pub fn mxint8() -> Self {
        MxQuantizer::new(
            "MXINT8",
            32,
            ElementCodec::Int(IntCodec::new(8)),
            ScaleKind::E8m0(ScaleRule::Ceil),
        )
    }

    /// MXINT4 (MicroScopiQ's activation path).
    pub fn mxint4() -> Self {
        MxQuantizer::new(
            "MXINT4",
            32,
            ElementCodec::Int(IntCodec::new(4)),
            ScaleKind::E8m0(ScaleRule::Ceil),
        )
    }

    /// "FP4": FP4 elements with an FP16 group scale (Figs. 2–3).
    pub fn fp4_fp16_scale() -> Self {
        MxQuantizer::new(
            "FP4",
            32,
            ElementCodec::Mini(fp4().clone()),
            ScaleKind::Fp16,
        )
    }

    /// Group size override (e.g. the Fig. 4 granularity sweep). The name
    /// gains a `-g<N>` suffix so result caches never conflate variants.
    #[must_use]
    pub fn with_group(mut self, group: usize) -> Self {
        assert!(group > 0);
        self.group = group;
        self.name = format!("{}-g{}", self.name, group);
        self
    }

    /// Enables the Fig. 3 variant: each group's maximum element is retained
    /// in FP16 precision.
    #[must_use]
    pub fn with_max_preservation(mut self) -> Self {
        self.preserve_max_fp16 = true;
        self.name = format!("{}+maxFP16", self.name);
        self
    }

    /// Group size.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Fake-quantizes one group.
    pub fn fake_quantize_group(&self, g: &[f32]) -> Vec<f32> {
        let amax = g.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let s = self.scale_for(amax);
        let mut out: Vec<f32> = g.iter().map(|&v| self.elem.quantize(v / s) * s).collect();
        if self.preserve_max_fp16 && amax > 0.0 {
            // First index attaining the maximum (ties -> lowest index,
            // matching the decode units elsewhere in this reproduction).
            let mut idx = 0;
            for (i, v) in g.iter().enumerate() {
                if v.abs() > g[idx].abs() {
                    idx = i;
                }
            }
            out[idx] = quantize_f16(g[idx]);
        }
        out
    }

    fn scale_for(&self, amax: f32) -> f32 {
        match self.scale {
            ScaleKind::E8m0(rule) => match &self.elem {
                ElementCodec::Mini(m) => rule.shared_scale(amax, m).value(),
                ElementCodec::Int(i) => {
                    // Smallest power of two with max_code·s >= amax.
                    if amax <= 0.0 {
                        return (m2x_formats::e8m0::MIN_EXP as f32).exp2();
                    }
                    let mut e = (amax / i.max_code() as f32).log2().ceil() as i32;
                    while (e as f32).exp2() * (i.max_code() as f32) < amax {
                        e += 1;
                    }
                    while e > m2x_formats::e8m0::MIN_EXP
                        && ((e - 1) as f32).exp2() * (i.max_code() as f32) >= amax
                    {
                        e -= 1;
                    }
                    m2x_formats::E8M0::from_exponent(e).value()
                }
            },
            ScaleKind::Fp16 => {
                if amax <= 0.0 {
                    return 1.0;
                }
                let s = quantize_f16(amax / self.elem.max_value());
                if s > 0.0 {
                    s
                } else {
                    f32::MIN_POSITIVE
                }
            }
        }
    }

    fn scale_bits(&self) -> f64 {
        match self.scale {
            ScaleKind::E8m0(_) => 8.0,
            ScaleKind::Fp16 => 16.0,
        }
    }
}

impl TensorQuantizer for MxQuantizer {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn weight_ebw(&self) -> f64 {
        let max_bits = if self.preserve_max_fp16 { 16.0 } else { 0.0 };
        self.elem.bits() as f64 + (self.scale_bits() + max_bits) / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        fake_quant_rowwise(w, self.group, |g| self.fake_quantize_group(g))
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        fake_quant_rowwise(x, self.group, |g| self.fake_quantize_group(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::{mse, nmse};
    use m2x_tensor::Xoshiro;

    fn sample(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut r = Xoshiro::seed(seed);
        Matrix::from_fn(rows, cols, |_, _| r.laplace(1.0))
    }

    #[test]
    fn mxfp4_ebw() {
        assert!((MxQuantizer::mxfp4().weight_ebw() - 4.25).abs() < 1e-12);
    }

    #[test]
    fn wider_elements_reduce_error() {
        let x = sample(8, 128, 1);
        let e4 = nmse(
            x.as_slice(),
            MxQuantizer::mxfp4().quantize_activations(&x).as_slice(),
        );
        let e6 = nmse(
            x.as_slice(),
            MxQuantizer::mxfp6_e2m3()
                .quantize_activations(&x)
                .as_slice(),
        );
        let e8 = nmse(
            x.as_slice(),
            MxQuantizer::mxfp8_e4m3()
                .quantize_activations(&x)
                .as_slice(),
        );
        assert!(e6 < e4 && e8 < e6, "e4={e4} e6={e6} e8={e8}");
    }

    #[test]
    fn fp16_scale_beats_e8m0_scale() {
        // Fig. 2's point: FP16 scaling aligns the block max tightly.
        let x = sample(16, 128, 2);
        let mx = nmse(
            x.as_slice(),
            MxQuantizer::mxfp4().quantize_activations(&x).as_slice(),
        );
        let fp = nmse(
            x.as_slice(),
            MxQuantizer::fp4_fp16_scale()
                .quantize_activations(&x)
                .as_slice(),
        );
        assert!(fp < mx, "fp4+fp16 {fp} should beat mxfp4 {mx}");
    }

    #[test]
    fn max_preservation_helps_mxfp4() {
        // Fig. 3's point: retaining the group max in FP16 recovers most of
        // MXFP4's loss.
        let x = sample(16, 128, 3);
        let plain = nmse(
            x.as_slice(),
            MxQuantizer::mxfp4().quantize_activations(&x).as_slice(),
        );
        let kept = nmse(
            x.as_slice(),
            MxQuantizer::mxfp4()
                .with_max_preservation()
                .quantize_activations(&x)
                .as_slice(),
        );
        assert!(kept < plain * 0.8, "kept {kept} vs plain {plain}");
    }

    #[test]
    fn mxint8_rounds_to_int_grid() {
        let q = MxQuantizer::mxint8();
        let x = Matrix::from_vec(1, 4, vec![127.0, -64.0, 1.0, 0.6]);
        let y = q.quantize_activations(&x);
        // amax=127 -> scale 1 (ceil: 127·2^0 >= 127).
        assert_eq!(y.as_slice(), &[127.0, -64.0, 1.0, 1.0]);
    }

    #[test]
    fn group_override_changes_granularity() {
        let x = sample(4, 256, 4);
        let g32 = nmse(
            x.as_slice(),
            MxQuantizer::mxfp4().quantize_activations(&x).as_slice(),
        );
        let g256 = nmse(
            x.as_slice(),
            MxQuantizer::mxfp4()
                .with_group(256)
                .quantize_activations(&x)
                .as_slice(),
        );
        assert!(g32 < g256, "finer groups must reduce error");
    }

    #[test]
    fn int_scale_never_clips() {
        let q = MxQuantizer::mxint4();
        for amax in [0.3f32, 1.0, 7.0, 8.0, 100.0, 1e-10] {
            let x = Matrix::from_vec(1, 2, vec![amax, -amax / 3.0]);
            let y = q.quantize_activations(&x);
            // RNE may round up by half a step, but never clips: the max
            // stays within half an INT4 step (scale covers amax, so a step
            // is at most amax/max_code·2 = ~2/7 of amax; half of that).
            let rel = (y[(0, 0)] - amax).abs() / amax.max(1e-20);
            assert!(rel <= 0.101, "amax {amax} -> {}", y[(0, 0)]);
        }
    }

    #[test]
    fn zero_group_is_stable() {
        let x = Matrix::zeros(1, 32);
        for q in [
            MxQuantizer::mxfp4(),
            MxQuantizer::mxint8(),
            MxQuantizer::fp4_fp16_scale(),
            MxQuantizer::mxfp4().with_max_preservation(),
        ] {
            let y = q.quantize_activations(&x);
            assert!(y.as_slice().iter().all(|&v| v == 0.0), "{}", q.name());
        }
    }

    #[test]
    fn mse_matches_direct_group_computation() {
        let x = sample(1, 32, 7);
        let q = MxQuantizer::mxfp4();
        let y = q.quantize_activations(&x);
        let direct = q.fake_quantize_group(x.as_slice());
        assert_eq!(y.as_slice(), &direct[..]);
        assert!(mse(x.as_slice(), y.as_slice()) > 0.0);
    }
}
