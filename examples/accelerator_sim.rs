//! Drive the cycle-level accelerator model: run LLaMA2-7B prefill on every
//! Fig. 13 accelerator and print latency, energy and the area budget —
//! plus a bit-exact check that the modeled PE pipeline reproduces the
//! algorithmic GEMM.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use m2xfp_repro::accel::arch::{AcceleratorConfig, AcceleratorKind};
use m2xfp_repro::accel::energy::{energy_of, EnergyModel};
use m2xfp_repro::accel::timing::run_model;
use m2xfp_repro::accel::units::{PeTile, TopOneDecodeUnit};
use m2xfp_repro::core::format::{ActTensor, WeightTensor};
use m2xfp_repro::core::M2xfpConfig;
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::tensor::{Matrix, Xoshiro};

fn main() {
    // ── 1. Functional check: the PE pipeline is bit-exact ──
    let cfg = M2xfpConfig::default();
    let mut rng = Xoshiro::seed(7);
    let xv = Matrix::from_fn(1, 32, |_, _| rng.laplace(1.0));
    let wv = Matrix::from_fn(1, 32, |_, _| rng.laplace(0.5));
    let x = ActTensor::quantize(&xv, cfg);
    let w = WeightTensor::quantize(&wv, cfg);
    let want = m2xfp_repro::core::gemm::qgemm(&x, &w)[(0, 0)];

    let pe = PeTile;
    let xg = &x.groups()[0];
    let wg = &w.groups()[0];
    let mut acc = 0i64;
    for (s, (xs, ws)) in xg.codes.chunks(8).zip(wg.codes.chunks(8)).enumerate() {
        let (top1, _) = TopOneDecodeUnit.top1(xs);
        acc += pe.subgroup_mac(ws, xs, top1, xg.meta[s], wg.sg_em[s]);
    }
    let got = pe.dequantize(acc, xg.scale.exponent(), wg.scale.exponent()) as f32;
    assert_eq!(got.to_bits(), want.to_bits());
    println!("PE pipeline vs algorithmic GEMM: bit-exact ({got} == {want})\n");

    // ── 2. Per-accelerator latency and energy (LLaMA2-7B, seq 4096) ──
    let model = ModelProfile::llama2_7b();
    let em = EnergyModel::default();
    println!("LLaMA2-7B prefill @ seq 4096, 32x32 PEs @ 500 MHz:");
    println!(
        "{:<12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "accelerator", "latency(s)", "energy(J)", "core", "buffer", "dram", "static"
    );
    let mut baseline = None;
    for kind in AcceleratorKind::ALL {
        let acfg = AcceleratorConfig::of(kind);
        let run = run_model(&model, &acfg, 4096);
        let e = energy_of(&run.total, &acfg, &em);
        baseline.get_or_insert(run.total.seconds);
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>8.0}% {:>8.0}% {:>8.0}% {:>8.0}%",
            kind.name(),
            run.total.seconds,
            e.total(),
            100.0 * e.core_j / e.total(),
            100.0 * e.buffer_j / e.total(),
            100.0 * e.dram_j / e.total(),
            100.0 * e.static_j / e.total(),
        );
    }

    // ── 3. Area budget (Tbl. 5) ──
    println!("\nArea/power budget of the M2XFP core:");
    for row in m2xfp_repro::accel::area::table5() {
        println!(
            "  {:<22} x{:<4} {:>8.4} mm2 {:>9.3} mW",
            row.component, row.count, row.area_mm2, row.power_mw
        );
    }
    let (a, p) = m2xfp_repro::accel::area::table5_totals();
    println!("  {:<22} {:>14.3} mm2 {:>9.2} mW", "Total", a, p);
}
