//! The §6.4 extension: applying M2XFP to attention and the KV cache.
//!
//! K/V are right-hand GEMM operands (like weights) and can be quantized
//! lazily with the adaptive Sg-EM search; Q and the attention probabilities
//! P are produced on the fly and use the online Elem-EM path. This example
//! measures attention-output error for that hybrid vs plain MXFP4, runs the
//! same head through the engine's execution backends (bit-identical by
//! construction), and drives a `QuantizedModel` prefill→decode session
//! whose KV state grows in fixed-size pages drawn from the process-wide
//! `KvPagePool`, packed in the Sg-EM representation —
//! decode-on-append: each new token's K rows are quantized and decoded
//! straight into the prepared score-GEMM plane, so a decode step costs
//! O(1) per head instead of re-decoding the whole cache.
//!
//! Run with: `cargo run --release --example kv_cache`

use m2xfp_repro::baselines::MxQuantizer;
use m2xfp_repro::core::backend::BackendKind;
use m2xfp_repro::core::quantizer::M2xfpQuantizer;
use m2xfp_repro::core::M2xfpConfig;
use m2xfp_repro::nn::attention::{evaluate_attention, evaluate_attention_backend, synth_head};
use m2xfp_repro::nn::layers::linear_macs_fraction;
use m2xfp_repro::nn::model::ModelBuilder;
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::tensor::Matrix;

fn main() {
    let model = ModelProfile::llama3_8b();

    // ── 1. Why the KV cache matters: MAC split vs sequence length ──
    println!("Linear vs attention MAC share ({}):", model.name);
    for seq in [1024usize, 4096, 16384] {
        let lin = linear_macs_fraction(&model, seq);
        println!(
            "  seq {:>6}: linear {:>5.1}%  attention {:>5.1}%",
            seq,
            lin * 100.0,
            (1.0 - lin) * 100.0
        );
    }
    println!("(paper §6.4: ~83% linear at 4096; attention ~45% at 16384)\n");

    // ── 2. Quantized attention: scores = Q·Kᵀ, out = P·V ──
    let (q, k, v) = synth_head(&model, 128, model.head_dim().min(128));
    let m2 = M2xfpQuantizer::default();
    let mx = MxQuantizer::mxfp4();
    // M2XFP hybrid: Elem-EM for the dynamic Q/P, Sg-EM for the cached K/V.
    let e_m2 = evaluate_attention(&q, &k, &v, &m2, &m2);
    // Uniform MXFP4 everywhere.
    let e_mx = evaluate_attention(&q, &k, &v, &mx, &mx);

    println!("Attention error over a {}-token head:", q.rows());
    println!(
        "  scores (Q·K^T) NMSE:  MXFP4 {:.6}  M2XFP {:.6}",
        e_mx.scores_nmse, e_m2.scores_nmse
    );
    println!(
        "  output (P·V)   NMSE:  MXFP4 {:.6}  M2XFP {:.6}",
        e_mx.output_nmse, e_m2.output_nmse
    );
    println!(
        "  output improvement: {:.2}x\n",
        e_mx.output_nmse / e_m2.output_nmse
    );

    // ── 3. The same head through the engine backends: score and value
    //       GEMMs run the real quantized kernels; every backend agrees ──
    let cfg = M2xfpConfig::default();
    for kind in BackendKind::ALL {
        let e = evaluate_attention_backend(&q, &k, &v, kind.backend(), cfg).expect("shapes");
        println!(
            "  engine[{:<9}] scores NMSE {:.6}  output NMSE {:.6}",
            kind.name(),
            e.scores_nmse,
            e.output_nmse
        );
    }

    // ── 4. A serving session: prefill a prompt, decode tokens, watch the
    //       packed Sg-EM KV cache grow on the appendable-plane path ──
    let mut qm = ModelBuilder::scaled(&model, 128, 2)
        .build()
        .expect("group-aligned dims");
    let prompt = activation_matrix(&model, 0, 12, 128).map(|x| (x * 0.25).tanh());
    qm.prefill(&prompt).expect("aligned");
    println!(
        "\nQuantizedModel session: prefilled {} tokens, {} packed KV B across {} pool pages",
        qm.seq_len(),
        qm.kv().packed_bytes(),
        qm.kv().page_count()
    );
    let decode_steps = 16;
    let t0 = std::time::Instant::now();
    for step in 0..decode_steps {
        let tok = Matrix::from_fn(1, 128, |_, c| prompt[(11, c)] * (1.0 - 0.01 * step as f32));
        qm.decode(&tok).expect("aligned");
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "after {decode_steps} decode steps: seq {}, {} packed KV B across {} pool pages \
         (4.5 bits/element)",
        qm.seq_len(),
        qm.kv().packed_bytes(),
        qm.kv().page_count()
    );
    println!(
        "decode {:.0} tok/s — each step appends K rows straight into the prepared \
         score-GEMM plane (O(1)/head), no per-step cache re-decode",
        decode_steps as f64 / dt
    );
}
