//! The §6.4 extension: applying M2XFP to attention and the KV cache.
//!
//! K/V are right-hand GEMM operands (like weights) and can be quantized
//! lazily with the adaptive Sg-EM search; Q and the attention probabilities
//! P are produced on the fly and use the online Elem-EM path. This example
//! measures attention-output error for that hybrid vs plain MXFP4 on both
//! operands, and reports the linear-vs-attention MAC split that motivates
//! the extension.
//!
//! Run with: `cargo run --release --example kv_cache`

use m2xfp_repro::baselines::MxQuantizer;
use m2xfp_repro::core::quantizer::M2xfpQuantizer;
use m2xfp_repro::nn::attention::{evaluate_attention, synth_head};
use m2xfp_repro::nn::layers::linear_macs_fraction;
use m2xfp_repro::nn::profile::ModelProfile;

fn main() {
    let model = ModelProfile::llama3_8b();

    // ── 1. Why the KV cache matters: MAC split vs sequence length ──
    println!("Linear vs attention MAC share ({}):", model.name);
    for seq in [1024usize, 4096, 16384] {
        let lin = linear_macs_fraction(&model, seq);
        println!(
            "  seq {:>6}: linear {:>5.1}%  attention {:>5.1}%",
            seq,
            lin * 100.0,
            (1.0 - lin) * 100.0
        );
    }
    println!("(paper §6.4: ~83% linear at 4096; attention ~45% at 16384)\n");

    // ── 2. Quantized attention: scores = Q·Kᵀ, out = P·V ──
    let (q, k, v) = synth_head(&model, 128, model.head_dim().min(128));
    let m2 = M2xfpQuantizer::default();
    let mx = MxQuantizer::mxfp4();
    // M2XFP hybrid: Elem-EM for the dynamic Q/P, Sg-EM for the cached K/V.
    let e_m2 = evaluate_attention(&q, &k, &v, &m2, &m2);
    // Uniform MXFP4 everywhere.
    let e_mx = evaluate_attention(&q, &k, &v, &mx, &mx);

    println!("Attention error over a {}-token head:", q.rows());
    println!(
        "  scores (Q·K^T) NMSE:  MXFP4 {:.6}  M2XFP {:.6}",
        e_mx.scores_nmse, e_m2.scores_nmse
    );
    println!(
        "  output (P·V)   NMSE:  MXFP4 {:.6}  M2XFP {:.6}",
        e_mx.output_nmse, e_m2.output_nmse
    );
    println!(
        "  output improvement: {:.2}x",
        e_mx.output_nmse / e_m2.output_nmse
    );
}
