//! Serving generation requests over HTTP through the `m2x-gateway`
//! front-end — a raw-socket walkthrough of the whole wire protocol.
//!
//! Starts a continuous-batching [`Server`] over one shared quantized
//! model, binds a [`Gateway`] on a loopback port, then talks to it the
//! way any HTTP client would: a `GET /healthz` probe, a streaming
//! `POST /v1/generate` whose SSE `data:` frames are reassembled into
//! token rows and verified **bit-identical** to the same request run solo
//! on a fresh session, a request with an already-expired deadline to show
//! the `504` mapping, and a `GET /metrics` scrape at the end.
//!
//! Run with: `cargo run --release --example gateway`
//!
//! [`Server`]: m2xfp_repro::serve::Server
//! [`Gateway`]: m2xfp_repro::gateway::Gateway

use m2xfp_repro::gateway::{client, Gateway, GatewayConfig};
use m2xfp_repro::nn::model::ModelBuilder;
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::serve::{run_solo, ServeConfig, Server};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let profile = ModelProfile::llama3_8b();

    // ── 1. Shared model + scheduler + gateway ──
    let t0 = Instant::now();
    let weights = Arc::new(
        ModelBuilder::scaled(&profile, 128, 2)
            .build_weights()
            .expect("group-aligned dims"),
    );
    let server = Arc::new(Server::start(Arc::clone(&weights), ServeConfig::default()));
    let gateway =
        Gateway::bind(Arc::clone(&server), GatewayConfig::default()).expect("bind a loopback port");
    let addr = gateway.local_addr();
    println!(
        "gateway: listening on http://{addr} in front of {} (built in {:.2?})",
        weights.name(),
        t0.elapsed()
    );

    // ── 2. Liveness probe ──
    let (status, _, body) = client::http_request(
        addr,
        b"GET /healthz HTTP/1.1\r\nhost: example\r\nconnection: close\r\n\r\n",
    )
    .expect("healthz");
    println!(
        "GET /healthz            -> {status} {}",
        String::from_utf8_lossy(&body).trim()
    );
    assert_eq!(status, 200);

    // ── 3. A streamed generation, checked against the solo oracle ──
    let prompt = activation_matrix(&profile, 7, 6, 128).map(|v| (v * 0.25).tanh());
    let steps = 12;
    let t1 = Instant::now();
    let got = client::generate(addr, &prompt, steps, None, None).expect("generate");
    println!(
        "POST /v1/generate       -> {} | {} SSE frames in {:.2?} | outcome {:?}",
        got.status,
        got.frames,
        t1.elapsed(),
        got.outcome.as_deref().unwrap_or("?"),
    );
    assert_eq!(got.status, 200);
    assert_eq!(got.frames, steps);

    let solo = run_solo(&weights, &prompt, steps).expect("solo oracle");
    let exact = got.tokens.rows() == solo.rows()
        && got
            .tokens
            .as_slice()
            .iter()
            .zip(solo.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "bit-identity            -> socket stream == run_solo: {exact} \
         ({} tokens x {} dims through JSON text)",
        got.tokens.rows(),
        got.tokens.cols()
    );
    assert!(exact, "streamed tokens diverged from the solo run");

    // ── 4. A request whose deadline expired before it ever ran: 504 ──
    let late = client::generate(addr, &prompt, steps, None, Some(0)).expect("expired request");
    println!(
        "POST (deadline_steps=0) -> {} | outcome {:?}",
        late.status,
        late.outcome.as_deref().unwrap_or("?")
    );
    assert_eq!(late.status, 504);

    // ── 5. Metrics scrape ──
    let (status, _, body) = client::http_request(
        addr,
        b"GET /metrics HTTP/1.1\r\nhost: example\r\nconnection: close\r\n\r\n",
    )
    .expect("metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8_lossy(&body);
    println!("GET /metrics            -> {status}");
    for line in text.lines().filter(|l| {
        l.starts_with("m2x_serve_decoded_tokens")
            || l.starts_with("m2x_serve_deadline_exceeded")
            || l.starts_with("m2x_gateway_streams_opened")
            || l.starts_with("m2x_gateway_requests")
    }) {
        println!("    {line}");
    }
    drop(gateway);
    println!("gateway: drained and shut down cleanly");
}
