//! Prefix sharing on the paged KV-cache pool: N requests that start with
//! the same long prompt prefix (a shared system prompt, say) are served
//! off **one** frozen copy of that prefix's KV pages instead of N.
//!
//! The first request to finish prefilling a page-aligned prefix freezes
//! those pages and registers them in the pool's prefix index. Every later
//! request whose prompt starts with the same rows adopts the frozen pages
//! by refcount — skipping the prefill work for the shared span — and
//! appends its own suffix/decode state into fresh pages next to them
//! (copy-on-write: a shared page is never written in place). The contract
//! this example double-checks is the repo-wide one: sharing must leave
//! **no trace** — every adopted request's token stream is bit-identical
//! to running it alone on a fresh session.
//!
//! Run with: `cargo run --release --example prefix_cache`

use m2xfp_repro::nn::model::ModelBuilder;
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::serve::{run_solo, ServeConfig, Server};
use m2xfp_repro::tensor::Matrix;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let profile = ModelProfile::llama3_8b();
    let hidden = 128;
    let weights = Arc::new(
        ModelBuilder::scaled(&profile, hidden, 2)
            .build_weights()
            .expect("group-aligned dims"),
    );
    let pool = weights.kv_pool();
    let page = pool.page_tokens();

    // ── 1. N prompts sharing a two-page prefix, each with its own tail ──
    let n_requests = 6;
    let decode_steps = 8;
    let prefix = activation_matrix(&profile, 42, 2 * page, hidden).map(|v| (v * 0.25).tanh());
    let prompts: Vec<Matrix> = (0..n_requests)
        .map(|i| {
            let suffix = activation_matrix(&profile, 100 + i, 6, hidden).map(|v| (v * 0.25).tanh());
            let mut p = prefix.clone();
            p.push_rows(&suffix);
            p
        })
        .collect();
    println!(
        "{n_requests} requests share a {}-token prefix ({} KV pages of {} tokens) + distinct \
         6-token tails",
        prefix.rows(),
        prefix.rows() / page,
        page
    );

    // ── 2. Solo oracles: each request alone on a fresh session ──
    let solo: Vec<Matrix> = prompts
        .iter()
        .map(|p| run_solo(&weights, p, decode_steps).expect("solo run"))
        .collect();

    // ── 3. Serve them. The first registers the frozen prefix; the rest
    //       adopt it. Submitting the seeder alone makes adoption
    //       deterministic rather than racing the prefill. ──
    let mut server = Server::start(
        Arc::clone(&weights),
        ServeConfig {
            max_batch: 4,
            ..ServeConfig::default()
        },
    );
    let t0 = Instant::now();
    let first = server
        .submit(prompts[0].clone(), decode_steps)
        .expect("submit");
    let seed_out = server
        .wait(first)
        .expect("typed outcome")
        .finished()
        .expect("no faults here");
    let ids: Vec<u64> = prompts[1..]
        .iter()
        .map(|p| server.submit(p.clone(), decode_steps).expect("submit"))
        .collect();
    // While the adopters are in flight they hold the same frozen pages —
    // the pool's shared-page gauge must see it. Poll rather than assert a
    // single racy sample: each adopter keeps its handles until it
    // finishes.
    // (`kv_prefix_hits` counts adopted *pages*: two per adopter here.)
    let mut shared_seen = 0u64;
    while server.stats().kv_prefix_hits < 2 * (n_requests - 1) as u64 {
        std::thread::yield_now();
    }
    shared_seen = shared_seen.max(server.stats().kv_shared_pages);
    let outs: Vec<Matrix> = ids
        .iter()
        .map(|id| {
            shared_seen = shared_seen.max(server.stats().kv_shared_pages);
            server
                .wait(*id)
                .expect("typed outcome")
                .finished()
                .expect("no faults here")
                .decoded
        })
        .collect();
    let wall = t0.elapsed();

    // ── 4. The checks: sharing really happened, and left no trace ──
    let stats = server.shutdown();
    assert_eq!(
        stats.kv_prefix_hits,
        2 * (n_requests - 1) as u64,
        "every adopter adopts both frozen prefix pages"
    );
    assert!(
        shared_seen >= 1,
        "adopters must have held the frozen pages concurrently"
    );
    let bits_eq = |a: &Matrix, b: &Matrix| {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
    };
    assert!(bits_eq(&seed_out.decoded, &solo[0]), "seeder diverged");
    for (i, out) in outs.iter().enumerate() {
        assert!(
            bits_eq(out, &solo[i + 1]),
            "adopter {i} diverged from its solo run"
        );
    }
    let ps = pool.stats();
    println!(
        "prefix index: {} hits / {} misses | pages: {} fresh allocs, {} free-list reuses, \
         {} CoW forks | peak {} in use, {} shared at peak sampling",
        ps.prefix_hits,
        ps.prefix_misses,
        ps.page_allocs,
        ps.page_reuses,
        ps.cow_clones,
        ps.peak_pages,
        shared_seen
    );
    println!(
        "all {n_requests} outputs bit-identical to solo runs ({} decode steps each) in {:.2?}",
        decode_steps, wall
    );
    assert_eq!(weights.open_sessions(), 0, "sessions leaked");
    assert_eq!(pool.stats().pages_in_use, 0, "pool pages leaked");
    println!("quiesced: 0 open sessions, 0 pool pages in use — every page back on the free list");
}
