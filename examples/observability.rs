//! Observability end to end: drive load through the serving stack, then
//! look at it three ways — the in-process [`TelemetrySnapshot`] (stage
//! split + latency histograms), the Prometheus `GET /metrics` exposition,
//! and the Chrome-trace `GET /v1/trace` dump — and finally flip tracing
//! off at runtime to show the rings go quiet while stats keep flowing.
//!
//! Run with: `cargo run --release --example observability`
//!
//! The trace JSON this prints can be saved to a file and loaded in any
//! Chrome-trace viewer (`chrome://tracing`, Perfetto) to see engine ticks,
//! per-stage sub-spans and request lifecycle instants on a shared
//! timeline.
//!
//! [`TelemetrySnapshot`]: m2xfp_repro::serve::TelemetrySnapshot

use m2xfp_repro::gateway::{client, Gateway, GatewayConfig};
use m2xfp_repro::nn::model::ModelBuilder;
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::serve::{ServeConfig, Server};
use m2xfp_repro::telemetry::stage;
use std::sync::Arc;

fn main() {
    let profile = ModelProfile::llama3_8b();

    // ── 1. Model + scheduler (telemetry on by default) + gateway ──
    let weights = Arc::new(
        ModelBuilder::scaled(&profile, 128, 2)
            .build_weights()
            .expect("group-aligned dims"),
    );
    let server = Arc::new(Server::start(Arc::clone(&weights), ServeConfig::default()));
    let gateway =
        Gateway::bind(Arc::clone(&server), GatewayConfig::default()).expect("bind a loopback port");
    let addr = gateway.local_addr();
    println!("observability: gateway on http://{addr}, telemetry enabled\n");

    // ── 2. Drive some load: a few streamed generations over the socket ──
    let steps = 8;
    for seed in 0..4 {
        let prompt = activation_matrix(&profile, seed, 6, 128).map(|v| (v * 0.25).tanh());
        let got = client::generate(addr, &prompt, steps, None, None).expect("generate");
        assert_eq!(got.status, 200);
    }
    println!("drove 4 streamed generations x {steps} decode steps\n");

    // ── 3. In-process view: stage split + latency histograms ──
    let snap = server.telemetry_snapshot();
    let sum_ns = snap.stages.stage_sum_ns().max(1);
    println!("per-stage split of {} engine ticks:", snap.step_us.count());
    for s in stage::ASSEMBLE..stage::TICK_STAGES as u16 {
        println!(
            "    {:<10} {:>9.1}µs  {:>5.1}%  ({} calls)",
            stage::name(s),
            snap.stages.ns(s) as f64 / 1000.0,
            snap.stages.ns(s) as f64 * 100.0 / sum_ns as f64,
            snap.stages.calls(s),
        );
    }
    println!(
        "    stage clocks cover {:.1}% of summed tick wall time",
        snap.stages.stage_sum_ns() as f64 / 10.0 / snap.step_us.sum().max(1) as f64
    );
    println!(
        "latency: step p50 ~{}µs p99 ~{}µs | TTFT p50 ~{}µs | queue wait p50 ~{}µs\n",
        snap.step_us.quantile(0.50),
        snap.step_us.quantile(0.99),
        snap.ttft_us.quantile(0.50),
        snap.queue_wait_us.quantile(0.50),
    );

    // ── 4. The same numbers over the wire: Prometheus exposition ──
    let (status, _, body) = client::http_request(
        addr,
        b"GET /metrics HTTP/1.1\r\nhost: example\r\nconnection: close\r\n\r\n",
    )
    .expect("metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8_lossy(&body);
    println!(
        "GET /metrics ({} families), e.g.:",
        text.matches("# TYPE").count()
    );
    for line in text
        .lines()
        .filter(|l| l.starts_with("m2x_serve_step_latency_us"))
        .take(6)
    {
        println!("    {line}");
    }
    println!("    ...\n");

    // ── 5. The transcript: Chrome trace-event JSON (destructive drain) ──
    let (status, _, body) = client::http_request(
        addr,
        b"GET /v1/trace HTTP/1.1\r\nhost: example\r\nconnection: close\r\n\r\n",
    )
    .expect("trace");
    assert_eq!(status, 200);
    let trace = String::from_utf8_lossy(&body);
    println!(
        "GET /v1/trace -> {} bytes: {} spans, {} instants ({} tick spans, {} token instants)",
        body.len(),
        trace.matches("\"ph\":\"X\"").count(),
        trace.matches("\"ph\":\"i\"").count(),
        trace.matches("\"name\":\"tick\"").count(),
        trace.matches("\"name\":\"req_token\"").count(),
    );
    println!("    load it in chrome://tracing or Perfetto to see the timeline\n");

    // ── 6. Flip tracing off at runtime: rings quiet, stats still flow ──
    server.telemetry().set_enabled(false);
    // The /v1/trace connection above emits its own connection span as it
    // closes — give it a moment, then sweep stragglers so the quiet-ring
    // check below isolates the disabled request.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let _ = server.telemetry().drain();
    let prompt = activation_matrix(&profile, 99, 6, 128).map(|v| (v * 0.25).tanh());
    let got = client::generate(addr, &prompt, steps, None, None).expect("generate");
    assert_eq!(got.status, 200);
    let buffered = server.telemetry().buffered();
    let stats = server.stats();
    println!(
        "tracing disabled -> {buffered} events buffered by the next request, \
         while stats still count {} decoded tokens (p99 step {:.0}µs)",
        stats.decoded_tokens, stats.p99_step_us
    );
    assert_eq!(buffered, 0);
    drop(gateway);
    println!("\nobservability: done");
}
