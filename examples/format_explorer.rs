//! Explore the metadata design space (paper §4.1–4.2): sweep the four
//! strategy families across subgroup sizes under fixed and adaptive shared
//! scales, and print the Pareto frontier that motivates the hybrid M2XFP
//! design.
//!
//! Run with: `cargo run --release --example format_explorer`

use m2xfp_repro::core::dse::{pareto_frontier, sweep, FIG6_SUBGROUPS};
use m2xfp_repro::core::strategy::{MetadataStrategy, ScaleMode};
use m2xfp_repro::core::ScaleRule;
use m2xfp_repro::tensor::{Matrix, Xoshiro};

fn main() {
    // A heavy-tailed workload (the regime the paper's analysis targets).
    let mut rng = Xoshiro::seed(99);
    let data = Matrix::from_fn(64, 256, |_, _| {
        if rng.chance(0.01) {
            rng.laplace(1.0) * 12.0
        } else {
            rng.laplace(1.0)
        }
    });

    for (label, mode) in [
        ("FIXED", ScaleMode::Fixed),
        ("ADAPTIVE", ScaleMode::Adaptive),
    ] {
        println!("── {label} shared scale ─────────────────────────────");
        let points = sweep(
            &data,
            &MetadataStrategy::FIG6_SET,
            &FIG6_SUBGROUPS,
            32,
            ScaleRule::Floor,
            mode,
        );
        println!("{:<14} {:>4} {:>7} {:>10}", "strategy", "sg", "EBW", "MSE");
        for p in &points {
            println!(
                "{:<14} {:>4} {:>7.3} {:>10.5}",
                p.strategy, p.subgroup_size, p.ebw, p.mse
            );
        }
        let frontier = pareto_frontier(&points);
        println!("\nPareto frontier:");
        for p in &frontier {
            println!(
                "  EBW {:>5.3}  MSE {:>9.5}  <- {} (sg {})",
                p.ebw, p.mse, p.strategy, p.subgroup_size
            );
        }
        println!();
    }

    println!("Paper's takeaway (§4.2.4): Elem-EM dominates the fixed-scale");
    println!("frontier at 4.5-4.75 EBW; Sg-EM overtakes once the adaptive");
    println!("shared scale is enabled — hence the hybrid: Elem-EM for online");
    println!("activations, Sg-EM-adaptive for offline weights.");
}
