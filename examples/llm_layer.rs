//! A W4A4 transformer layer end to end: synthesize LLaMA3-8B-like
//! weights/activations, run every projection GEMM quantized, and report the
//! per-layer output error for each format — the measurement underlying
//! Tables 2–4.
//!
//! Run with: `cargo run --release --example llm_layer`

use m2xfp_repro::baselines::{MxQuantizer, Nvfp4};
use m2xfp_repro::core::quantizer::{M2xfpQuantizer, TensorQuantizer};
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::propagate::{evaluate, EvalConfig};

fn main() {
    let model = ModelProfile::llama3_8b();
    let cfg = EvalConfig {
        tokens: 48,
        max_k: 512,
        max_n: 256,
        layer_samples: 2,
        threads: 8,
    };
    println!(
        "W4A4 error through {}'s linear stack ({} layers, hidden {}):\n",
        model.name, model.layers, model.hidden
    );

    let formats: Vec<Box<dyn TensorQuantizer>> = vec![
        Box::new(MxQuantizer::mxfp4()),
        Box::new(Nvfp4::default()),
        Box::new(M2xfpQuantizer::default()),
    ];
    for q in &formats {
        let e = evaluate(&model, q.as_ref(), &cfg);
        println!("{} (EBW {:.2}):", e.format, q.activation_ebw());
        for (name, nmse) in &e.per_gemm {
            println!("  {name:<10} output NMSE = {nmse:.5}");
        }
        println!(
            "  MAC-weighted mean = {:.5}  (relative RMS error {:.3})\n",
            e.mean_nmse,
            e.nrmse()
        );
    }

    println!("Expected ordering: M2XFP < NVFP4 < MXFP4 (paper Tbl. 2-3).");
}
