//! A W4A4 transformer layer end to end: synthesize LLaMA3-8B-like
//! weights/activations, run every projection GEMM quantized, and report the
//! per-layer output error for each format — the measurement underlying
//! Tables 2–4 — then the same measurement through the engine's real
//! execution backend, and finally a whole quantized model via the
//! `QuantizedModel` session API.
//!
//! Run with: `cargo run --release --example llm_layer`

use m2xfp_repro::baselines::{MxQuantizer, Nvfp4};
use m2xfp_repro::core::backend::BackendKind;
use m2xfp_repro::core::quantizer::{M2xfpQuantizer, TensorQuantizer};
use m2xfp_repro::core::M2xfpConfig;
use m2xfp_repro::nn::model::ModelBuilder;
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::propagate::{evaluate, evaluate_backend, EvalConfig};
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::tensor::stats::nmse;

fn main() {
    let model = ModelProfile::llama3_8b();
    let cfg = EvalConfig {
        tokens: 48,
        max_k: 512,
        max_n: 256,
        layer_samples: 2,
        threads: 8,
    };
    println!(
        "W4A4 error through {}'s linear stack ({} layers, hidden {}):\n",
        model.name, model.layers, model.hidden
    );

    // ── 1. Format comparison (fake-quantize + f32 matmul, as the paper
    //       frames Tables 2-4) ──
    let formats: Vec<Box<dyn TensorQuantizer>> = vec![
        Box::new(MxQuantizer::mxfp4()),
        Box::new(Nvfp4::default()),
        Box::new(M2xfpQuantizer::default()),
    ];
    for q in &formats {
        let e = evaluate(&model, q.as_ref(), &cfg);
        println!("{} (EBW {:.2}):", e.format, q.activation_ebw());
        for (name, nmse) in &e.per_gemm {
            println!("  {name:<10} output NMSE = {nmse:.5}");
        }
        println!(
            "  MAC-weighted mean = {:.5}  (relative RMS error {:.3})\n",
            e.mean_nmse,
            e.nrmse()
        );
    }
    println!("Expected ordering: M2XFP < NVFP4 < MXFP4 (paper Tbl. 2-3).\n");

    // ── 2. The same measurement through the real engine: online encode +
    //       integer PE kernel via the ExecBackend abstraction. All three
    //       backends are bit-identical; run the production one ──
    let e = evaluate_backend(
        &model,
        BackendKind::Packed.backend(),
        M2xfpConfig::default(),
        &cfg,
    );
    println!(
        "{} (engine-true qGEMM): MAC-weighted mean = {:.5}",
        e.format, e.mean_nmse
    );

    // ── 3. Whole-model session: quantize a scaled-down stack and run a
    //       batched forward against the f32 reference ──
    let mut qm = ModelBuilder::scaled(&model, 256, 4)
        .keep_reference(true)
        .build()
        .expect("group-aligned dims");
    let x = activation_matrix(&model, 0, 16, 256).map(|v| (v * 0.25).tanh());
    let y = qm.forward_batch(&x).expect("aligned");
    let y_ref = qm.reference_forward_batch(&x).expect("reference kept");
    println!(
        "\nQuantizedModel ({} layers, hidden {}, {} heads, backend {}):",
        qm.layer_count(),
        qm.hidden(),
        qm.heads(),
        qm.backend().name()
    );
    println!(
        "  weight footprint {} KiB, whole-model output NRMSE {:.4}",
        qm.weight_bytes() / 1024,
        nmse(y_ref.as_slice(), y.as_slice()).sqrt()
    );
}
