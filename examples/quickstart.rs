//! Quickstart: quantize a tensor to M2XFP, inspect the packed layout,
//! dequantize, and compare the error against MXFP4 and NVFP4.
//!
//! Run with: `cargo run --release --example quickstart`

use m2xfp_repro::baselines::{MxQuantizer, Nvfp4};
use m2xfp_repro::core::format::ActTensor;
use m2xfp_repro::core::quantizer::{M2xfpQuantizer, TensorQuantizer};
use m2xfp_repro::core::M2xfpConfig;
use m2xfp_repro::tensor::{stats, Matrix, Xoshiro};

fn main() {
    // A heavy-tailed activation-like tensor: 64 tokens × 256 channels.
    let mut rng = Xoshiro::seed(42);
    let x = Matrix::from_fn(64, 256, |_, _| rng.laplace(1.0));

    // ── 1. One-line fake quantization through the shared trait ──
    println!("Per-format reconstruction error on a Laplace tensor:");
    println!(
        "{:<10} {:>6} {:>12} {:>10}",
        "format", "EBW", "NMSE", "SQNR(dB)"
    );
    for q in [
        Box::new(MxQuantizer::mxfp4()) as Box<dyn TensorQuantizer>,
        Box::new(Nvfp4::default()),
        Box::new(M2xfpQuantizer::default()),
    ] {
        let xq = q.quantize_activations(&x);
        println!(
            "{:<10} {:>6.2} {:>12.6} {:>10.2}",
            q.name(),
            q.activation_ebw(),
            stats::nmse(x.as_slice(), xq.as_slice()),
            stats::sqnr_db(x.as_slice(), xq.as_slice()),
        );
    }

    // ── 2. The packed representation (Algorithm 1 + §5.2 layout) ──
    let cfg = M2xfpConfig::default(); // group 32, subgroup 8, floor rule
    let packed = ActTensor::quantize(&x, cfg);
    let bytes = packed.pack().expect("aligned shape");
    println!(
        "\nPacked {}x{} tensor: {} bytes = {:.2} bits/element",
        x.rows(),
        x.cols(),
        bytes.len(),
        bytes.len() as f64 * 8.0 / x.len() as f64
    );

    // Round-trip through the wire format is lossless.
    let restored = ActTensor::unpack(&bytes, x.rows(), x.cols(), cfg).expect("valid buffer");
    assert_eq!(packed, restored);
    println!("pack → unpack round-trip: exact");

    // ── 3. A peek inside one group ──
    let g = &packed.groups()[0];
    println!(
        "\nFirst group: scale = {}, metadata = {:?}",
        g.scale, g.meta
    );
    let dq = packed.dequantize();
    let err = stats::max_abs_err(&x.as_slice()[..32], &dq.as_slice()[..32]);
    println!("max |error| in the first group: {err:.4}");
}
