//! Serving a handful of concurrent generation requests from one shared
//! quantized model through the `m2x-serve` continuous-batching runtime —
//! including the fault-tolerant request lifecycle: deadlines, explicit
//! cancellation, and typed [`RequestOutcome`]s.
//!
//! One `Arc<ModelWeights>` (every projection Sg-EM-quantized and prepared
//! once) backs every request; each request only owns its packed KV cache.
//! The scheduler admits arrivals up to the batch window, stacks all active
//! requests' pending rows into one batched engine step, and retires
//! requests as they finish — and every surviving request's token stream is
//! bit-identical to running it alone, which this example double-checks
//! while a deadline expiry and a cancellation land in the same batch.
//!
//! Run with: `cargo run --release --example serve`
//!
//! [`RequestOutcome`]: m2xfp_repro::serve::RequestOutcome

use m2xfp_repro::nn::model::ModelBuilder;
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::serve::{run_solo, RequestOptions, RequestOutcome, ServeConfig, Server};
use m2xfp_repro::tensor::Matrix;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let profile = ModelProfile::llama3_8b();

    // ── 1. Build the shared model once: quantize + prepare every layer ──
    let t0 = Instant::now();
    let weights = Arc::new(
        ModelBuilder::scaled(&profile, 128, 2)
            .build_weights()
            .expect("group-aligned dims"),
    );
    println!(
        "shared model: {} ({} layers, hidden {}, {} KiB packed weights) built in {:.2?}",
        weights.name(),
        weights.layer_count(),
        weights.hidden(),
        weights.weight_bytes() / 1024,
        t0.elapsed()
    );

    // ── 2. A burst of concurrent requests: different prompts & lengths ──
    let requests: Vec<(Matrix, usize)> = (0..6)
        .map(|i| {
            let prompt =
                activation_matrix(&profile, i, 4 + 2 * (i % 3), 128).map(|v| (v * 0.25).tanh());
            (prompt, 6 + i) // decode 6..=11 tokens each
        })
        .collect();

    // ── 3. Serve them through the continuous-batching scheduler ──
    let mut server = Server::start(
        Arc::clone(&weights),
        ServeConfig {
            max_batch: 4, // admission window smaller than the burst
            ..ServeConfig::default()
        },
    );
    let t0 = Instant::now();
    let ids: Vec<u64> = requests
        .iter()
        .map(|(p, d)| server.submit(p.clone(), *d).expect("valid request"))
        .collect();
    println!(
        "\nsubmitted {} requests (open loop) — admission window {}",
        ids.len(),
        4
    );

    // ── 4. Two more requests exercise the failure semantics: one with an
    //       impossible deadline, one cancelled mid-flight. Both release
    //       their KV memory between steps; neither disturbs the batch. ──
    let doomed_prompt = activation_matrix(&profile, 90, 4, 128).map(|v| (v * 0.25).tanh());
    let doomed = server
        .submit_with(
            doomed_prompt,
            500,
            RequestOptions {
                deadline_steps: Some(2), // a 501-step request with a 2-step SLO
                ..RequestOptions::default()
            },
        )
        .expect("valid request");
    let unwanted_prompt = activation_matrix(&profile, 91, 4, 128).map(|v| (v * 0.25).tanh());
    let unwanted = server
        .submit(unwanted_prompt, 10_000)
        .expect("valid request");
    server.cancel(unwanted).expect("id was issued here");
    match server.wait(doomed).expect("typed outcome") {
        RequestOutcome::DeadlineExceeded { decoded_tokens } => println!(
            "request {doomed}: deadline exceeded after {decoded_tokens} decode tokens \
             (2-step SLO, 500-step request)"
        ),
        other => println!("request {doomed}: {}", other.kind()),
    }
    match server.wait(unwanted).expect("typed outcome") {
        RequestOutcome::Cancelled { decoded_tokens } => println!(
            "request {unwanted}: cancelled mid-flight after {decoded_tokens} decode tokens, \
             KV reclaimed between steps"
        ),
        other => println!("request {unwanted}: {}", other.kind()),
    }

    // ── 5. The disrupted requests never touched the survivors' bits ──
    for (id, (prompt, decode)) in ids.iter().zip(&requests) {
        let out = server
            .wait(*id)
            .expect("typed outcome")
            .finished()
            .expect("no faults target these requests");
        println!(
            "  request {id}: prompt {:>2} tokens + {decode} decoded, \
             latency {} scheduler steps",
            prompt.rows(),
            out.finished_step - out.arrived_step,
        );
        // The scheduler never changes the bits — only when they compute.
        let solo = run_solo(&weights, prompt, *decode).expect("solo run");
        assert_eq!(out.decoded, solo, "request {id} diverged from solo");
    }
    let stats = server.shutdown();
    println!(
        "\nall {} requests served in {:.2?}: {} scheduler steps, {} decode tokens, peak batch {}, \
         {} cancelled, {} deadline-exceeded",
        ids.len(),
        t0.elapsed(),
        stats.steps,
        stats.decoded_tokens,
        stats.peak_batch,
        stats.cancelled,
        stats.deadline_exceeded,
    );
    assert_eq!(weights.open_sessions(), 0, "no leaked sessions after drain");
    println!("every surviving stream bit-identical to its solo session ✓ (zero leaked sessions)");
}
