//! Serving a handful of concurrent generation requests from one shared
//! quantized model through the `m2x-serve` continuous-batching runtime.
//!
//! One `Arc<ModelWeights>` (every projection Sg-EM-quantized and prepared
//! once) backs every request; each request only owns its packed KV cache.
//! The scheduler admits arrivals up to the batch window, stacks all active
//! requests' pending rows into one batched engine step, and retires
//! requests as they finish — and every request's token stream is
//! bit-identical to running it alone, which this example double-checks.
//!
//! Run with: `cargo run --release --example serve`

use m2xfp_repro::nn::model::ModelBuilder;
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::serve::{run_solo, ServeConfig, Server};
use m2xfp_repro::tensor::Matrix;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let profile = ModelProfile::llama3_8b();

    // ── 1. Build the shared model once: quantize + prepare every layer ──
    let t0 = Instant::now();
    let weights = Arc::new(
        ModelBuilder::scaled(&profile, 128, 2)
            .build_weights()
            .expect("group-aligned dims"),
    );
    println!(
        "shared model: {} ({} layers, hidden {}, {} KiB packed weights) built in {:.2?}",
        weights.name(),
        weights.layer_count(),
        weights.hidden(),
        weights.weight_bytes() / 1024,
        t0.elapsed()
    );

    // ── 2. A burst of concurrent requests: different prompts & lengths ──
    let requests: Vec<(Matrix, usize)> = (0..6)
        .map(|i| {
            let prompt =
                activation_matrix(&profile, i, 4 + 2 * (i % 3), 128).map(|v| (v * 0.25).tanh());
            (prompt, 6 + i) // decode 6..=11 tokens each
        })
        .collect();

    // ── 3. Serve them through the continuous-batching scheduler ──
    let server = Server::start(
        Arc::clone(&weights),
        ServeConfig {
            max_batch: 4, // admission window smaller than the burst
            worker_threads: 0,
        },
    );
    let t0 = Instant::now();
    let ids: Vec<u64> = requests
        .iter()
        .map(|(p, d)| server.submit(p.clone(), *d).expect("valid request"))
        .collect();
    println!(
        "\nsubmitted {} requests (open loop) — admission window {}",
        ids.len(),
        4
    );
    for (id, (prompt, decode)) in ids.iter().zip(&requests) {
        let out = server.wait(*id);
        println!(
            "  request {id}: prompt {:>2} tokens + {decode} decoded, \
             latency {} scheduler steps",
            prompt.rows(),
            out.finished_step - out.arrived_step,
        );
        // The scheduler never changes the bits — only when they compute.
        let solo = run_solo(&weights, prompt, *decode).expect("solo run");
        assert_eq!(out.decoded, solo, "request {id} diverged from solo");
    }
    let stats = server.stats();
    println!(
        "\nall {} requests served in {:.2?}: {} scheduler steps, {} decode tokens, peak batch {}",
        ids.len(),
        t0.elapsed(),
        stats.steps,
        stats.decoded_tokens,
        stats.peak_batch,
    );
    println!("every stream bit-identical to its solo session ✓");
}
