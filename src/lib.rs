//! # m2xfp-repro
//!
//! Umbrella crate for the full reproduction of
//! *M2XFP: A Metadata-Augmented Microscaling Data Format for Efficient
//! Low-bit Quantization* (ASPLOS '26).
//!
//! Each subsystem lives in its own crate; this crate re-exports them under
//! short names and hosts the cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`).
//!
//! * [`formats`] — software minifloat/integer codecs and bit packing.
//! * [`tensor`] — matrix math, heavy-tailed RNG, error statistics.
//! * [`core`] — the M2XFP format itself (encoder, decoder, GEMM, DSE).
//! * [`baselines`] — every format/algorithm the paper compares against.
//! * [`nn`] — synthetic LLM substrate and perplexity/accuracy proxies.
//! * [`serve`] — multi-session continuous-batching serving runtime.
//! * [`gateway`] — std-only streaming HTTP/1.1 front-end over [`serve`].
//! * [`accel`] — cycle-level accelerator model (timing/energy/area).

pub use m2x_accel as accel;
pub use m2x_baselines as baselines;
pub use m2x_formats as formats;
pub use m2x_gateway as gateway;
pub use m2x_nn as nn;
pub use m2x_serve as serve;
pub use m2x_tensor as tensor;
pub use m2xfp as core;

pub mod testkit {
    //! A minimal deterministic property-testing harness (the workspace
    //! builds offline, so the `proptest` crate is unavailable).
    //!
    //! [`cases`] runs a closure against `n` independently seeded [`Gen`]
    //! generators; each case's seed is derived from its index, so failures
    //! reproduce exactly and tests stay bit-stable across runs. There is no
    //! shrinking: on failure, the panic message plus the case index is the
    //! reproducer.

    use m2x_tensor::Xoshiro;

    pub mod alloc_witness {
        //! A counting [`GlobalAlloc`] — the runtime witness behind the
        //! `m2x-lint` R1 hot-path allocation rule. A test binary installs
        //! [`CountingAlloc`] as its `#[global_allocator]` and then asserts,
        //! via [`count_allocations`], that a warmed-up hot path performs
        //! zero (or a bounded number of) heap allocations per step. The
        //! static lint proves the *source* discipline; this proves the
        //! *runtime* behaviour the discipline exists for.

        use std::alloc::{GlobalAlloc, Layout, System};
        use std::sync::atomic::{AtomicU64, Ordering};

        /// Allocations observed process-wide since program start.
        static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

        /// A [`System`]-backed allocator that counts every allocation
        /// (fresh `alloc`s and growing `realloc`s; frees are not counted).
        pub struct CountingAlloc;

        // SAFETY: every method delegates directly to `System`, which
        // upholds the `GlobalAlloc` contract; the added atomic counter
        // bumps never touch the returned memory.
        unsafe impl GlobalAlloc for CountingAlloc {
            // SAFETY: unsafe-to-call per the trait; delegates to `System`.
            unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                // SAFETY: forwarded verbatim; caller upholds `layout`.
                unsafe { System.alloc(layout) }
            }

            // SAFETY: unsafe-to-call per the trait; delegates to `System`.
            unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
                // SAFETY: `ptr` came from this allocator (which is
                // `System` underneath) with the same `layout`.
                unsafe { System.dealloc(ptr, layout) }
            }

            // SAFETY: unsafe-to-call per the trait; delegates to `System`.
            unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                // SAFETY: forwarded verbatim; caller upholds the
                // `realloc` contract for `ptr`/`layout`/`new_size`.
                unsafe { System.realloc(ptr, layout, new_size) }
            }
        }

        /// Runs `f` and returns how many heap allocations it performed.
        ///
        /// Counts process-wide: run witness tests single-threaded
        /// (`--test-threads=1`) so concurrent tests don't bleed in.
        pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let out = f();
            (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
        }
    }

    /// Per-case random input generator.
    pub struct Gen {
        rng: Xoshiro,
        /// Index of the case being run (for assertion messages).
        pub case: usize,
    }

    impl Gen {
        /// Uniform `f32` in `[lo, hi)`.
        pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
            self.rng.uniform_range(lo, hi)
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            self.rng.below(n)
        }

        /// Uniform integer in `[lo, hi]`.
        pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
            lo + self.rng.below((hi - lo + 1) as usize) as i64
        }

        /// A raw 32-bit value.
        pub fn u32(&mut self) -> u32 {
            self.rng.next_u64() as u32
        }

        /// A vector of `len` uniform samples from `[lo, hi)`.
        pub fn vec_f32(&mut self, len: usize, lo: f32, hi: f32) -> Vec<f32> {
            (0..len).map(|_| self.f32_in(lo, hi)).collect()
        }

        /// A vector with a random length in `[min_len, max_len]` of uniform
        /// byte values below `bound`.
        pub fn vec_u8_below(&mut self, bound: u8, min_len: usize, max_len: usize) -> Vec<u8> {
            let len = min_len + self.below(max_len - min_len + 1);
            (0..len).map(|_| self.below(bound as usize) as u8).collect()
        }
    }

    /// Runs `body` for `n` deterministic cases.
    pub fn cases(n: usize, mut body: impl FnMut(&mut Gen)) {
        for case in 0..n {
            let mut g = Gen {
                rng: Xoshiro::seed(0xA076_1D64_78BD_642F ^ (case as u64).wrapping_mul(0x9E37)),
                case,
            };
            body(&mut g);
        }
    }
}
