//! # m2xfp-repro
//!
//! Umbrella crate for the full reproduction of
//! *M2XFP: A Metadata-Augmented Microscaling Data Format for Efficient
//! Low-bit Quantization* (ASPLOS '26).
//!
//! Each subsystem lives in its own crate; this crate re-exports them under
//! short names and hosts the cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`).
//!
//! * [`formats`] — software minifloat/integer codecs and bit packing.
//! * [`tensor`] — matrix math, heavy-tailed RNG, error statistics.
//! * [`core`] — the M2XFP format itself (encoder, decoder, GEMM, DSE).
//! * [`baselines`] — every format/algorithm the paper compares against.
//! * [`nn`] — synthetic LLM substrate and perplexity/accuracy proxies.
//! * [`serve`] — multi-session continuous-batching serving runtime.
//! * [`gateway`] — std-only streaming HTTP/1.1 front-end over [`serve`].
//! * [`telemetry`] — zero-alloc tracing, stage timing and histograms.
//! * [`accel`] — cycle-level accelerator model (timing/energy/area).

pub use m2x_accel as accel;
pub use m2x_baselines as baselines;
pub use m2x_formats as formats;
pub use m2x_gateway as gateway;
pub use m2x_nn as nn;
pub use m2x_serve as serve;
pub use m2x_telemetry as telemetry;
pub use m2x_tensor as tensor;
pub use m2xfp as core;

pub mod testkit {
    //! A minimal deterministic property-testing harness (the workspace
    //! builds offline, so the `proptest` crate is unavailable).
    //!
    //! [`cases`] runs a closure against `n` independently seeded [`Gen`]
    //! generators; each case's seed is derived from its index, so failures
    //! reproduce exactly and tests stay bit-stable across runs. There is no
    //! shrinking: on failure, the panic message plus the case index is the
    //! reproducer.

    use m2x_tensor::Xoshiro;

    /// The counting-`GlobalAlloc` witness behind the `m2x-lint` R1
    /// hot-path allocation rule, re-exported from
    /// [`m2x_telemetry::alloc_probe`] so the allocation counter has a
    /// single definition shared with the bench binary's
    /// `telemetry.zero_alloc` gate.
    pub use m2x_telemetry::alloc_probe as alloc_witness;

    /// Per-case random input generator.
    pub struct Gen {
        rng: Xoshiro,
        /// Index of the case being run (for assertion messages).
        pub case: usize,
    }

    impl Gen {
        /// Uniform `f32` in `[lo, hi)`.
        pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
            self.rng.uniform_range(lo, hi)
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            self.rng.below(n)
        }

        /// Uniform integer in `[lo, hi]`.
        pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
            lo + self.rng.below((hi - lo + 1) as usize) as i64
        }

        /// A raw 32-bit value.
        pub fn u32(&mut self) -> u32 {
            self.rng.next_u64() as u32
        }

        /// A vector of `len` uniform samples from `[lo, hi)`.
        pub fn vec_f32(&mut self, len: usize, lo: f32, hi: f32) -> Vec<f32> {
            (0..len).map(|_| self.f32_in(lo, hi)).collect()
        }

        /// A vector with a random length in `[min_len, max_len]` of uniform
        /// byte values below `bound`.
        pub fn vec_u8_below(&mut self, bound: u8, min_len: usize, max_len: usize) -> Vec<u8> {
            let len = min_len + self.below(max_len - min_len + 1);
            (0..len).map(|_| self.below(bound as usize) as u8).collect()
        }
    }

    /// Runs `body` for `n` deterministic cases.
    pub fn cases(n: usize, mut body: impl FnMut(&mut Gen)) {
        for case in 0..n {
            let mut g = Gen {
                rng: Xoshiro::seed(0xA076_1D64_78BD_642F ^ (case as u64).wrapping_mul(0x9E37)),
                case,
            };
            body(&mut g);
        }
    }
}
