//! # m2xfp-repro
//!
//! Umbrella crate for the full reproduction of
//! *M2XFP: A Metadata-Augmented Microscaling Data Format for Efficient
//! Low-bit Quantization* (ASPLOS '26).
//!
//! Each subsystem lives in its own crate; this crate re-exports them under
//! short names and hosts the cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`).
//!
//! * [`formats`] — software minifloat/integer codecs and bit packing.
//! * [`tensor`] — matrix math, heavy-tailed RNG, error statistics.
//! * [`core`] — the M2XFP format itself (encoder, decoder, GEMM, DSE).
//! * [`baselines`] — every format/algorithm the paper compares against.
//! * [`nn`] — synthetic LLM substrate and perplexity/accuracy proxies.
//! * [`accel`] — cycle-level accelerator model (timing/energy/area).

pub use m2x_accel as accel;
pub use m2x_baselines as baselines;
pub use m2x_formats as formats;
pub use m2x_nn as nn;
pub use m2x_tensor as tensor;
pub use m2xfp as core;
